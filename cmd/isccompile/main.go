// Command isccompile is the software compiler: it compiles a benchmark
// against an MDES produced by iscgen (possibly for a different application)
// and reports cycle counts, replacements and speedup.
//
// Usage:
//
//	iscgen -bench blowfish -o bf.json
//	isccompile -bench rijndael -mdes bf.json -variants
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/mdes"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("isccompile: ")
	bench := flag.String("bench", "", "benchmark to compile")
	asmPath := flag.String("asm", "", "read the program from an assembly file instead of -bench")
	mdesPath := flag.String("mdes", "", "MDES file from iscgen (required)")
	variants := flag.Bool("variants", false, "enable subsumed-subgraph matching")
	classes := flag.Bool("classes", false, "enable opcode-class wildcard matching")
	verify := flag.Bool("verify", true, "verify transformed blocks in the functional simulator")
	trace := flag.String("trace", "", "write a structured telemetry dump (JSON) to this file; a per-stage summary goes to stderr")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	if (*bench == "" && *asmPath == "") || *mdesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *pprofAddr != "" {
		if err := telemetry.ServePprof(*pprofAddr); err != nil {
			log.Fatalf("pprof: %v", err)
		}
		log.Printf("pprof listening on %s", *pprofAddr)
	}
	var tel *telemetry.Registry
	if *trace != "" {
		tel = telemetry.New("isccompile")
	}
	b, err := workloads.Load(*bench, *asmPath)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(*mdesPath)
	if err != nil {
		log.Fatal(err)
	}
	m, err := mdes.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	_, rep, err := core.CompileWith(b.Program, m, core.Config{
		UseVariants:      *variants,
		UseOpcodeClasses: *classes,
		Verify:           *verify,
		Telemetry:        tel,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s compiled on CFUs of %s (budget %.0f adders)\n", b.Name, m.Source, m.Budget)
	if rep.Truncated {
		fmt.Println("  note: MDES came from a truncated (anytime) exploration; speedup is a lower bound")
	}
	fmt.Printf("  %-14s %10s %10s %6s %8s\n", "block", "base cyc", "cfu cyc", "repl", "weight")
	for _, blk := range rep.Blocks {
		fmt.Printf("  %-14s %10d %10d %6d %8.0f\n",
			blk.Name, blk.BaseCycles, blk.CustomCycles, blk.Replacements, blk.Weight)
	}
	fmt.Printf("  weighted cycles: %.0f -> %.0f\n", rep.BaselineCycles, rep.CustomCycles)
	fmt.Printf("  replacements: %d exact, %d via subsumed variants\n",
		rep.ExactReplacements, rep.VariantReplacements)
	// Sorted so the report is deterministic run to run.
	names := make([]string, 0, len(rep.PerCFU))
	for name := range rep.PerCFU {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if n := rep.PerCFU[name]; n > 0 {
			fmt.Printf("    %-44s x%d\n", name, n)
		}
	}
	fmt.Printf("  speedup: %.3fx\n", rep.Speedup)

	// The trace dump and summary both stay off stdout, which must remain
	// byte-identical with telemetry on or off.
	if tel != nil {
		f, err := os.Create(*trace)
		if err != nil {
			log.Fatal(err)
		}
		if err := tel.WriteJSON(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		tel.WriteSummary(os.Stderr)
	}
}
