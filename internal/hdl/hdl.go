package hdl

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/graph"
	"repro/internal/hwlib"
	"repro/internal/mdes"
)

// EmitCFU writes one Verilog module for the pattern: it lowers the shape
// to a structured netlist (BuildNetlist) and renders it. The netlist is
// the artifact the co-simulation harness checks, so the emitted text is
// exactly what was differentially tested.
func EmitCFU(w io.Writer, moduleName string, s *graph.Shape, lib *hwlib.Library) error {
	n, err := BuildNetlist(moduleName, s, lib)
	if err != nil {
		return err
	}
	return n.WriteVerilog(w)
}

// sanitize turns a CFU name into a legal Verilog identifier.
func sanitize(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	out := strings.Trim(sb.String(), "_")
	for strings.Contains(out, "__") {
		out = strings.ReplaceAll(out, "__", "_")
	}
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "cfu_" + out
	}
	return out
}

// ModuleName returns the sanitized Verilog module name for a CFU name,
// shared by EmitMDES, the ISA mapper and the co-simulation reports so
// every artifact refers to one unit by one identifier.
func ModuleName(cfuName string) string { return sanitize(cfuName) }

// EmitMDES writes one module per CFU in the machine description, plus a
// file header recording provenance.
func EmitMDES(w io.Writer, m *mdes.MDES, lib *hwlib.Library) error {
	fmt.Fprintf(w, "// Custom function units generated for %q (budget %.0f adders)\n", m.Source, m.Budget)
	fmt.Fprintf(w, "// %d units, %.2f adder-equivalents of datapath\n\n", len(m.CFUs), m.TotalArea)
	for i := range m.CFUs {
		spec := &m.CFUs[i]
		if spec.Shape.UsesMemory() {
			fmt.Fprintf(w, "// %s contains load operations: datapath not emitted (needs a cache port wrapper)\n\n", spec.Name)
			continue
		}
		if err := EmitCFU(w, sanitize(spec.Name), spec.Shape, lib); err != nil {
			return fmt.Errorf("hdl: %s: %w", spec.Name, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
