package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Registry collects telemetry for one tool run.
type Registry struct {
	tool    string
	start   time.Time
	cpu0    time.Duration
	mu      sync.Mutex
	spans    map[string]*spanAgg
	counters map[string]int64
	gauges   map[string]float64
}

type spanAgg struct {
	count  int64
	wall   time.Duration
	cpu    time.Duration
	min    time.Duration
	max    time.Duration
}

// New returns an enabled registry labeled with the tool name.
func New(tool string) *Registry {
	return &Registry{
		tool:     tool,
		start:    time.Now(),
		cpu0:     processCPU(),
		spans:    make(map[string]*spanAgg),
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
	}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// StartSpan begins one timed stage. The returned func ends the span and
// folds its wall/CPU duration into the named aggregate; call it exactly
// once (defer r.StartSpan("explore")() is the usual shape). Overlapping
// spans each see the whole process's CPU delta, so CPU attribution is only
// exact for stages that do not run concurrently with other stages.
func (r *Registry) StartSpan(name string) func() {
	if r == nil {
		return func() {}
	}
	t0, c0 := time.Now(), processCPU()
	return func() {
		wall, cpu := time.Since(t0), processCPU()-c0
		r.mu.Lock()
		a := r.spans[name]
		if a == nil {
			a = &spanAgg{min: wall}
			r.spans[name] = a
		}
		a.count++
		a.wall += wall
		a.cpu += cpu
		if wall < a.min {
			a.min = wall
		}
		if wall > a.max {
			a.max = wall
		}
		r.mu.Unlock()
	}
}

// Span times fn as one occurrence of the named stage.
func (r *Registry) Span(name string, fn func()) {
	if r == nil {
		fn()
		return
	}
	end := r.StartSpan(name)
	fn()
	end()
}

// Add increments a monotonic counter.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// AddHitMiss increments name+".hit" when hit, else name+".miss"; the
// memo-cache instrumentation shape.
func (r *Registry) AddHitMiss(name string, hit bool) {
	if hit {
		r.Add(name+".hit", 1)
	} else {
		r.Add(name+".miss", 1)
	}
}

// SetGauge records the latest value of a gauge. For determinism across
// worker counts, set gauges only to values independent of scheduling.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises a gauge to v if v exceeds its current value (max
// commutes, so concurrent updates are order-independent).
func (r *Registry) MaxGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// SpanStat is one stage's aggregate in a Snapshot.
type SpanStat struct {
	Name   string `json:"name"`
	Count  int64  `json:"count"`
	WallNS int64  `json:"wall_ns"`
	CPUNS  int64  `json:"cpu_ns"`
	MinNS  int64  `json:"min_ns"`
	MaxNS  int64  `json:"max_ns"`
}

// Snapshot is the exported, JSON-stable view of a registry. Spans are
// sorted by name; map keys serialize in sorted order.
type Snapshot struct {
	Tool     string             `json:"tool"`
	WallNS   int64              `json:"wall_ns"`
	CPUNS    int64              `json:"cpu_ns"`
	Spans    []SpanStat         `json:"spans"`
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{Counters: map[string]int64{}, Gauges: map[string]float64{}}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Tool:     r.tool,
		WallNS:   int64(time.Since(r.start)),
		CPUNS:    int64(processCPU() - r.cpu0),
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for name, a := range r.spans {
		s.Spans = append(s.Spans, SpanStat{
			Name: name, Count: a.count,
			WallNS: int64(a.wall), CPUNS: int64(a.cpu),
			MinNS: int64(a.min), MaxNS: int64(a.max),
		})
	}
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	return s
}

// WriteJSON writes the structured trace dump (the -trace file format).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// ReadJSON parses a trace dump written by WriteJSON.
func ReadJSON(rd io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(rd).Decode(&s); err != nil {
		return nil, fmt.Errorf("telemetry: bad trace: %w", err)
	}
	return &s, nil
}

// WriteSummary renders the human-readable per-stage report (the stderr
// companion of the -trace dump). Stages sort by total wall time descending
// so the most expensive stage leads.
func (r *Registry) WriteSummary(w io.Writer) {
	s := r.Snapshot()
	fmt.Fprintf(w, "telemetry: %s wall %v cpu %v\n", s.Tool,
		time.Duration(s.WallNS).Round(time.Millisecond),
		time.Duration(s.CPUNS).Round(time.Millisecond))
	if len(s.Spans) > 0 {
		fmt.Fprintf(w, "  %-24s %7s %12s %12s %12s\n", "stage", "count", "wall", "cpu", "avg")
		sorted := append([]SpanStat(nil), s.Spans...)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].WallNS != sorted[j].WallNS {
				return sorted[i].WallNS > sorted[j].WallNS
			}
			return sorted[i].Name < sorted[j].Name
		})
		for _, sp := range sorted {
			avg := time.Duration(0)
			if sp.Count > 0 {
				avg = time.Duration(sp.WallNS / sp.Count)
			}
			fmt.Fprintf(w, "  %-24s %7d %12v %12v %12v\n", sp.Name, sp.Count,
				time.Duration(sp.WallNS).Round(time.Microsecond),
				time.Duration(sp.CPUNS).Round(time.Microsecond),
				avg.Round(time.Microsecond))
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "  counters:\n")
		keys := make([]string, 0, len(s.Counters))
		for k := range s.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "    %-40s %d\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "  gauges:\n")
		keys := make([]string, 0, len(s.Gauges))
		for k := range s.Gauges {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "    %-40s %g\n", k, s.Gauges[k])
		}
	}
	if busy, cap := s.Counters["pool.busy_ns"], s.Counters["pool.capacity_ns"]; cap > 0 {
		fmt.Fprintf(w, "  pool utilization: %.1f%% of %v worker-time\n",
			100*float64(busy)/float64(cap), time.Duration(cap).Round(time.Millisecond))
	}
}
