package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/server"
)

// TestClusterCorpusShardingAndAggregation boots corpus-backed replicas
// behind an affinity router and checks the shard-map story end to end:
// a program's repeat requests land on (and warm) one replica's corpus,
// the X-Iscd-Corpus header passes through the router, and GET /v1/corpus
// aggregates every replica's stats into one cluster-wide view.
func TestClusterCorpusShardingAndAggregation(t *testing.T) {
	var cfg Config
	for i := 0; i < 2; i++ {
		store, err := corpus.Open("", 0)
		if err != nil {
			t.Fatal(err)
		}
		srv := server.New(server.Config{
			Name:          fmt.Sprintf("r%d", i+1),
			MaxConcurrent: 2,
			Corpus:        store,
		})
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		cfg.Replicas = append(cfg.Replicas, ReplicaConfig{Name: fmt.Sprintf("r%d", i+1), URL: ts.URL})
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(c.Close)
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)

	// Cold request: the affinity ring picks this program's home replica.
	resp, _ := postCluster(t, front.URL, `{"benchmark":"rawdaudio","budget":8,"deadline_ms":60000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold request returned %d", resp.StatusCode)
	}
	home := resp.Header.Get("X-Isccluster-Replica")
	if got := resp.Header.Get("X-Iscd-Corpus"); !strings.HasPrefix(got, "hits=0 misses=") || got == "hits=0 misses=0" {
		t.Fatalf("cold request X-Iscd-Corpus = %q, want hits=0 with nonzero misses", got)
	}

	// Same program, different budget: same routing key, so the request
	// lands on the same replica and replays its warmed corpus — the ring
	// is the shard map.
	resp, _ = postCluster(t, front.URL, `{"benchmark":"rawdaudio","budget":9,"deadline_ms":60000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request returned %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Isccluster-Replica"); got != home {
		t.Fatalf("warm request routed to %s, want the home replica %s", got, home)
	}
	if got := resp.Header.Get("X-Iscd-Corpus"); strings.HasPrefix(got, "hits=0") || !strings.HasSuffix(got, "misses=0") {
		t.Fatalf("warm request X-Iscd-Corpus = %q, want nonzero hits and zero misses", got)
	}

	// The aggregation endpoint sums the fleet.
	aresp, err := http.Get(front.URL + "/v1/corpus")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	body, err := io.ReadAll(aresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if aresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/corpus: status %d: %s", aresp.StatusCode, body)
	}
	var view struct {
		Policy   string          `json:"policy"`
		Enabled  int             `json:"enabled"`
		Replicas []corpusReplica `json:"replicas"`
		Total    corpus.Stats    `json:"total"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("decoding /v1/corpus: %v", err)
	}
	if view.Enabled != 2 || len(view.Replicas) != 2 {
		t.Fatalf("aggregation saw %d enabled of %d rows, want 2 of 2", view.Enabled, len(view.Replicas))
	}
	if view.Total.Inserts == 0 || view.Total.Hits == 0 || view.Total.Entries == 0 {
		t.Fatalf("aggregate totals = %+v, want nonzero inserts, hits, entries", view.Total)
	}
	for _, row := range view.Replicas {
		if row.Error != "" || !row.Enabled || row.Stats == nil {
			t.Fatalf("replica row %+v, want enabled with stats", row)
		}
	}
}
