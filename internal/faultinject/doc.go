// Package faultinject is a test-only fault switchboard for exercising the
// pipeline's failure paths deterministically. Production code calls
// Fire(site, key) at stage entry points; when disarmed (the default) that
// is a single atomic load and nothing more. Tests and CI arm it through
// the REPRO_FAULTS environment variable or Enable, with specs of the form
//
//	site:key=panic | error | slow[:DURATION] | hang[:DURATION]
//	             | flaky[:N] | kill[:CODE]
//
// where site is one of benchmark, explore, select, compile (the experiment
// harness stages), server (the iscd request path), or replica (the iscd
// HTTP front door, keyed by the replica's -name), and key is a benchmark
// or replica name or * for any. This is how CI proves the fault-isolation
// contracts: a panicking sweep job becomes a PanicError row, an iscd panic
// becomes a 500 without killing the daemon, and an injected slow burns a
// request deadline to force a Truncated best-so-far response.
//
// The cluster-level modes model sick replicas for the isccluster
// robustness suite: hang answers nothing until far past any client
// timeout, flaky:N fails every Nth call deterministically (the flaky-5xx
// replica that stays in rotation but trips circuit breakers), and kill
// exits the whole process mid-request (arm it only in a process you own —
// the cluster-smoke CI job uses it to murder one replica of three).
//
// Main entry points: Fire (the instrumentation site), Enable / Reset
// (programmatic arming with restore), Fired (assertion counters),
// InjectedError, and EnvVar.
package faultinject
