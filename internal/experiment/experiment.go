package experiment

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfu"
	"repro/internal/compile"
	"repro/internal/corpus"
	"repro/internal/explore"
	"repro/internal/faultinject"
	"repro/internal/hwlib"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/mdes"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workloads"
)

// Budgets1to15 is the paper's area sweep: one through fifteen adders.
func Budgets1to15() []float64 {
	out := make([]float64, 15)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// Harness caches the expensive per-benchmark artifacts (exploration and
// combination) so sweeps over budgets and cross-compiles reuse them. All
// methods are safe for concurrent use: the caches are compute-once across
// goroutines, and the sweep/study harnesses fan their compile jobs out
// over Parallelism workers while merging results in input order, so their
// output is byte-identical to a serial run.
type Harness struct {
	Lib     *hwlib.Library
	Machine *machine.Desc
	// Verify, when set, checks every compiled program against its source
	// with the functional simulator and fails loudly on divergence.
	Verify bool
	// ExploreConfig overrides the default exploration (nil = default).
	ExploreConfig *explore.Config
	// SelectMode is the selection heuristic (default GreedyRatio).
	SelectMode cfu.SelectMode
	// Strategy picks the candidate-discovery algorithm for every
	// exploration the harness runs ("" = explore.StrategyEnumerate); see
	// explore.Strategies. Like every configuration field, set it before
	// the first run — the memo caches do not key on it.
	Strategy string
	// CostModel picks the guide's pricing ("" = explore.CostArea); see
	// explore.CostModels.
	CostModel string
	// Seed perturbs the improve strategy's restart schedule (deterministic
	// per value); ignored by enumerate.
	Seed int64
	// Parallelism bounds the number of concurrent compile jobs in the
	// sweep and study harnesses (0 = runtime.GOMAXPROCS(0), 1 = serial).
	// Set configuration fields before the first run: the memo caches key
	// on benchmark name and budget, not on Lib/SelectMode/ExploreConfig.
	Parallelism int
	// Telemetry, when non-nil, receives per-stage spans, memo-cache
	// hit/miss counters and worker-pool utilization from every harness
	// run. All aggregates commute, so the recorded totals are identical
	// at every Parallelism setting (timings aside). nil disables
	// instrumentation at near-zero cost.
	Telemetry *telemetry.Registry
	// Ctx, when non-nil, cancels the hardware-compiler stages (explore,
	// combine, select) cooperatively; results built after cancellation are
	// tagged Truncated but remain valid (see explore.Config.Ctx).
	Ctx context.Context
	// ExploreDeadline bounds each benchmark's exploration wall-clock time
	// (0 = none); expiry yields a Truncated, best-so-far candidate pool.
	ExploreDeadline time.Duration
	// MaxCandidates caps the candidates exploration records per benchmark
	// (0 = unlimited); hitting the cap tags the results Truncated.
	MaxCandidates int
	// Corpus, when non-nil, memoizes per-block exploration results across
	// harness runs and processes (see internal/corpus); warm runs select
	// byte-identical results to cold ones. Like every configuration field,
	// set it before the first run.
	Corpus *corpus.Corpus

	mu       sync.Mutex
	benches  map[string]*memoCell[*workloads.Benchmark]
	cands    map[string]*memoCell[candSet]
	mdess    map[mdesKey]*memoCell[*mdes.MDES]
	selLocks map[string]*sync.Mutex
	// jobNanos accumulates per-job wall time for the speedup report.
	jobNanos atomic.Int64
	// tokens is the shared worker-token pool (lazily sized to workers()):
	// sweep pool workers each hold one token while running, and exploration
	// spawns extra per-block workers only against the leftover tokens, so
	// the two levels of parallelism together never exceed the -j budget.
	tokensOnce sync.Once
	tokens     *explore.Tokens
}

// mdesKey identifies one selection: an application's candidates spent at
// one area budget.
type mdesKey struct {
	name   string
	budget float64
}

// candSet is one benchmark's candidate pool plus whether an anytime budget
// cut the exploration or combination short while building it.
type candSet struct {
	cfus      []*cfu.CFU
	truncated bool
}

// NewHarness returns a harness with the paper's defaults.
func NewHarness() *Harness {
	return &Harness{
		Lib:      hwlib.Default(),
		Machine:  machine.Default4Wide(),
		benches:  make(map[string]*memoCell[*workloads.Benchmark]),
		cands:    make(map[string]*memoCell[candSet]),
		mdess:    make(map[mdesKey]*memoCell[*mdes.MDES]),
		selLocks: make(map[string]*sync.Mutex),
	}
}

// Benchmark returns (and caches) the named benchmark.
func (h *Harness) Benchmark(name string) (*workloads.Benchmark, error) {
	v, hit, err := memoize(&h.mu, h.benches, name, func() (*workloads.Benchmark, error) {
		if err := faultinject.Fire("benchmark", name); err != nil {
			return nil, err
		}
		return workloads.ByName(name)
	})
	h.Telemetry.AddHitMiss("memo.benchmark", hit)
	return v, err
}

// RegisterBenchmark installs a pre-built benchmark — typically an
// internal/synth program — into the benchmark cache under b.Name, so every
// harness surface (Sweep, CompileOn, the studies) accepts the name exactly
// like a seed workload. Register before any exploration under that name:
// the downstream candidate/MDES memos key on the name and are not evicted.
func (h *Harness) RegisterBenchmark(b *workloads.Benchmark) {
	c := &memoCell[*workloads.Benchmark]{val: b}
	c.once.Do(func() {})
	h.mu.Lock()
	h.benches[b.Name] = c
	h.mu.Unlock()
}

// Candidates runs exploration + combination for the named benchmark once,
// no matter how many workers ask for it concurrently.
func (h *Harness) Candidates(name string) ([]*cfu.CFU, error) {
	cs, err := h.candidatesFull(name)
	return cs.cfus, err
}

// candidatesFull is Candidates plus the truncation tag of the pool.
func (h *Harness) candidatesFull(name string) (candSet, error) {
	v, hit, err := memoize(&h.mu, h.cands, name, func() (candSet, error) {
		if err := faultinject.Fire("explore", name); err != nil {
			return candSet{}, err
		}
		b, err := h.Benchmark(name)
		if err != nil {
			return candSet{}, err
		}
		cfg := explore.DefaultConfig(h.Lib)
		if h.ExploreConfig != nil {
			cfg = *h.ExploreConfig
		}
		cfg.Strategy = h.Strategy
		cfg.CostModel = h.CostModel
		cfg.Seed = h.Seed
		cfg.Telemetry = h.Telemetry
		if h.Ctx != nil {
			cfg.Ctx = h.Ctx
		}
		if h.ExploreDeadline > 0 {
			cfg.Deadline = h.ExploreDeadline
		}
		if h.MaxCandidates > 0 {
			cfg.MaxCandidates = h.MaxCandidates
		}
		if h.Corpus != nil {
			cfg.Corpus = h.Corpus
		}
		h.exploreParallel(&cfg)
		res := explore.Explore(b.Program, cfg)
		cfus, ctrunc := cfu.CombinePartial(res, h.Lib, cfu.CombineOptions{Telemetry: h.Telemetry, Ctx: h.Ctx})
		return candSet{cfus: cfus, truncated: res.Stats.Truncated || ctrunc}, nil
	})
	h.Telemetry.AddHitMiss("memo.candidates", hit)
	return v, err
}

// MDESAt selects CFUs for the named benchmark at the given area budget.
// Selections are memoized per (benchmark, budget), and the cfu.Select call
// itself is serialized per benchmark because selection lazily mutates the
// shared candidate list. The MDES carries a Truncated tag when any anytime
// budget (harness deadline, candidate cap, context) cut exploration,
// combination, or selection short.
func (h *Harness) MDESAt(name string, budget float64) (*mdes.MDES, error) {
	v, hit, err := memoize(&h.mu, h.mdess, mdesKey{name, budget}, func() (*mdes.MDES, error) {
		if err := faultinject.Fire("select", name); err != nil {
			return nil, err
		}
		cs, err := h.candidatesFull(name)
		if err != nil {
			return nil, err
		}
		l := h.selLock(name)
		l.Lock()
		sel := cfu.Select(cs.cfus, cfu.SelectOptions{Budget: budget, Mode: h.SelectMode, Telemetry: h.Telemetry, Ctx: h.Ctx})
		l.Unlock()
		m := mdes.FromSelection(name, budget, sel)
		m.Truncated = m.Truncated || cs.truncated
		return m, nil
	})
	h.Telemetry.AddHitMiss("memo.mdesat", hit)
	return v, err
}

// CompileOn compiles application app against the CFUs generated for
// cfuSource at the given budget and returns the speedup report.
func (h *Harness) CompileOn(app, cfuSource string, budget float64, opts compile.Options) (*compile.Report, error) {
	defer h.noteJobTime(time.Now())
	if err := faultinject.Fire("compile", app); err != nil {
		return nil, err
	}
	b, err := h.Benchmark(app)
	if err != nil {
		return nil, err
	}
	m, err := h.MDESAt(cfuSource, budget)
	if err != nil {
		return nil, err
	}
	if opts.Machine == nil {
		opts.Machine = h.Machine
	}
	if opts.Lib == nil {
		opts.Lib = h.Lib
	}
	if opts.Telemetry == nil {
		opts.Telemetry = h.Telemetry
	}
	out, rep, err := compile.Compile(b.Program, m, opts)
	if err != nil {
		return nil, fmt.Errorf("experiment: compile %s on %s: %w", app, cfuSource, err)
	}
	if h.Verify {
		endSim := h.Telemetry.StartSpan("sim.verify")
		defer endSim()
		for i := range b.Program.Blocks {
			if err := sim.Equivalent(b.Program.Blocks[i], out.Blocks[i], 10, uint32(31*i+7)); err != nil {
				return nil, fmt.Errorf("experiment: %s on %s, block %s: %w",
					app, cfuSource, b.Program.Blocks[i].Name, err)
			}
			h.Telemetry.Add("sim.blocks.verified", 1)
		}
	}
	return rep, nil
}

// SweepPoint is one (budget, speedup) sample of a Figure 7 curve.
type SweepPoint struct {
	Budget  float64
	Speedup float64
	// Truncated marks a point whose hardware came from a budget-cut
	// (anytime) exploration: a valid lower bound, not the full search.
	Truncated bool
}

// SweepResult is one curve of Figure 7.
type SweepResult struct {
	App       string
	CFUSource string // equals App for native compiles
	Points    []SweepPoint
	// Err is the first failure among this curve's compile jobs (nil when
	// every point succeeded). Renderers skip failed curves; the sweep's
	// overall error joins every job failure across all curves.
	Err error
	// Truncated reports that at least one point of the curve is truncated.
	Truncated bool
}

// Label renders the curve name as the paper does ("rijndael-blowfish").
func (s *SweepResult) Label() string {
	if s.App == s.CFUSource {
		return s.App
	}
	return s.App + "-" + s.CFUSource
}

// sweepPair is one (application, CFU source) curve request.
type sweepPair struct {
	app, src string
}

// sweepAll compiles every (pair, budget) combination as one flat job list
// on the worker pool, writing each speedup into its predetermined slot so
// the curves come back in input order regardless of scheduling.
//
// Failures are isolated per curve: a benchmark whose pipeline errors (or
// panics) marks only its own SweepResult.Err, every other curve completes
// normally, and the returned error joins all job failures so the caller
// can report each one and still render the healthy curves.
func (h *Harness) sweepAll(pairs []sweepPair, budgets []float64) ([]*SweepResult, error) {
	out := make([]*SweepResult, len(pairs))
	for k, p := range pairs {
		out[k] = &SweepResult{App: p.app, CFUSource: p.src, Points: make([]SweepPoint, len(budgets))}
	}
	nb := len(budgets)
	if nb == 0 {
		return out, nil
	}
	errs := h.parallelForAll(len(pairs)*nb,
		func(j int) string {
			p := pairs[j/nb]
			return fmt.Sprintf("benchmark %q on %q at budget %g", p.app, p.src, budgets[j%nb])
		},
		func(j int) error {
			k, bi := j/nb, j%nb
			rep, err := h.CompileOn(pairs[k].app, pairs[k].src, budgets[bi], compile.Options{})
			if err != nil {
				return fmt.Errorf("benchmark %s on %s at budget %g: %w",
					pairs[k].app, pairs[k].src, budgets[bi], err)
			}
			out[k].Points[bi] = SweepPoint{Budget: budgets[bi], Speedup: rep.Speedup, Truncated: rep.Truncated}
			return nil
		})
	// Attribute failures and truncation to curves after the pool drains —
	// jobs write only their own slot, so no concurrent flag updates.
	for j, err := range errs {
		if err != nil && out[j/nb].Err == nil {
			out[j/nb].Err = err
		}
	}
	for _, r := range out {
		for _, pt := range r.Points {
			if pt.Truncated {
				r.Truncated = true
				break
			}
		}
	}
	return out, errors.Join(errs...)
}

// Sweep compiles app against cfuSource's CFUs across the budgets. The
// compiler generalizations are enabled as in the paper's Figure 7 runs
// (exact matching only; extensions are studied separately). The curve is
// returned even on error, holding the points that did compile.
func (h *Harness) Sweep(app, cfuSource string, budgets []float64) (*SweepResult, error) {
	res, err := h.sweepAll([]sweepPair{{app, cfuSource}}, budgets)
	return res[0], err
}

// Fig7Native produces the left half of Figure 7 for one domain: every
// application in the domain compiled on its own CFUs.
func (h *Harness) Fig7Native(domain string, budgets []float64) ([]*SweepResult, error) {
	apps, err := domainApps(domain)
	if err != nil {
		return nil, err
	}
	pairs := make([]sweepPair, len(apps))
	for i, app := range apps {
		pairs[i] = sweepPair{app, app}
	}
	return h.sweepAll(pairs, budgets)
}

// Fig7Cross produces the right half of Figure 7 for one domain: every
// application compiled on every *other* application's CFUs.
func (h *Harness) Fig7Cross(domain string, budgets []float64) ([]*SweepResult, error) {
	apps, err := domainApps(domain)
	if err != nil {
		return nil, err
	}
	var pairs []sweepPair
	for _, app := range apps {
		for _, src := range apps {
			if src != app {
				pairs = append(pairs, sweepPair{app, src})
			}
		}
	}
	return h.sweepAll(pairs, budgets)
}

func domainApps(domain string) ([]string, error) {
	var out []string
	for _, b := range workloads.All() {
		if b.Domain == domain {
			out = append(out, b.Name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: unknown domain %q", domain)
	}
	return out, nil
}

// ExtensionResult is one bar group of Figures 8/9: the four speedups for
// an (application, CFU set) pair at the 15-adder point.
type ExtensionResult struct {
	App, CFUSource string
	// Exact: exact subgraph matches only (grey bar, left pair).
	Exact float64
	// ExactSubsumed: exact + subsumed subgraph matching (full left bar).
	ExactSubsumed float64
	// Wildcard: opcode-class hardware, exact matching (grey bar, right).
	Wildcard float64
	// WildcardSubsumed: opcode classes + subsumed matching (full right).
	WildcardSubsumed float64
}

// Label renders "app-source" or just "app" for native pairs.
func (e *ExtensionResult) Label() string {
	if e.App == e.CFUSource {
		return e.App
	}
	return e.App + "-" + e.CFUSource
}

// ExtensionStudy reproduces Figures 8 and 9 for one domain: all app x CFU
// set combinations at the given cost point, under the four matching modes.
func (h *Harness) ExtensionStudy(domain string, budget float64) ([]*ExtensionResult, error) {
	apps, err := domainApps(domain)
	if err != nil {
		return nil, err
	}
	var out []*ExtensionResult
	for _, app := range apps {
		for _, src := range apps {
			out = append(out, &ExtensionResult{App: app, CFUSource: src})
		}
	}
	// The four matching modes of one bar group are independent compiles,
	// so the job list is (pair, mode); each job writes its own field.
	modes := [4]struct{ variants, classes bool }{
		{false, false}, {true, false}, {false, true}, {true, true},
	}
	err = h.parallelFor(len(out)*len(modes), func(j int) error {
		er, m := out[j/len(modes)], modes[j%len(modes)]
		rep, err := h.CompileOn(er.App, er.CFUSource, budget, compile.Options{
			UseVariants:      m.variants,
			UseOpcodeClasses: m.classes,
		})
		if err != nil {
			return err
		}
		switch {
		case m.variants && m.classes:
			er.WildcardSubsumed = rep.Speedup
		case m.variants:
			er.ExactSubsumed = rep.Speedup
		case m.classes:
			er.Wildcard = rep.Speedup
		default:
			er.Exact = rep.Speedup
		}
		return nil
	})
	// Partial results: bar groups whose jobs all succeeded are complete;
	// the joined error names every failed (pair, mode) job.
	return out, err
}

// LimitResult is one row of the limit study.
type LimitResult struct {
	App string
	// At15 is the speedup at the paper's 15-adder point with the default
	// 5-in/3-out port constraints.
	At15 float64
	// Unlimited is the speedup with effectively infinite area and ports.
	Unlimited float64
}

// LimitStudy compares each benchmark's constrained speedup to the
// infinite-resource ideal, as in §5's limit discussion.
func (h *Harness) LimitStudy(apps []string) ([]*LimitResult, error) {
	if apps == nil {
		apps = workloads.Names()
	}
	out := make([]*LimitResult, len(apps))
	err := h.parallelFor(len(apps), func(i int) error {
		app := apps[i]
		rep15, err := h.CompileOn(app, app, 15, compile.Options{})
		if err != nil {
			return err
		}

		// Unconstrained run. The candidate pool is the union of the
		// default exploration and a relaxed one (generous ports, narrow
		// fanout, high effort cap) that grows candidates toward
		// whole-block size — the paper's 200-op, 80-port CFUs — without
		// enumerating the now-enormous middle of the design space. The
		// union guarantees the unconstrained pool is a superset of the
		// constrained one.
		b, err := h.Benchmark(app)
		if err != nil {
			return err
		}
		relaxed := explore.DefaultConfig(h.Lib)
		relaxed.MaxInputs = 96
		relaxed.MaxOutputs = 48
		relaxed.OvershootIO = 8
		relaxed.Fanout = explore.UniformFanout(2)
		relaxed.MaxExamined = 60000
		h.exploreParallel(&relaxed)
		res := explore.Explore(b.Program, relaxed)
		bcfg := explore.DefaultConfig(h.Lib)
		h.exploreParallel(&bcfg)
		base := explore.Explore(b.Program, bcfg)
		res.Candidates = append(res.Candidates, base.Candidates...)

		// The unconstrained pool is local to this job, so no select lock.
		cands := cfu.Combine(res, h.Lib, cfu.CombineOptions{})
		sel := cfu.Select(cands, cfu.SelectOptions{Budget: 1e9, Mode: h.SelectMode, Lib: h.Lib})
		m := mdes.FromSelection(app, 1e9, sel)
		_, repInf, err := compile.Compile(b.Program, m, compile.Options{Machine: h.Machine, Lib: h.Lib})
		if err != nil {
			return err
		}
		out[i] = &LimitResult{App: app, At15: rep15.Speedup, Unlimited: repInf.Speedup}
		return nil
	})
	// Partial results: rows for failed apps stay nil; renderers skip them.
	return out, err
}

// ExplorationStats reproduces Figure 3: subgraphs examined by candidate
// size for naive exponential growth versus the guide-function heuristic, on
// one benchmark (the paper uses blowfish, whose 16-round straight-line
// encrypt block is the "very large basic block" case). Both modes run
// under the same examination budget; the naive search burns it on an
// exponential wall of small subgraphs while the guided search reaches far
// larger candidates.
type ExplorationStats struct {
	App          string
	Budget       int
	NaiveBySize  map[int]int
	GuidedBySize map[int]int
	NaiveTotal   int
	GuidedTotal  int
	// NaiveMaxSize and GuidedMaxSize are the largest candidate sizes each
	// mode reached within the budget.
	NaiveMaxSize, GuidedMaxSize int
}

// Fig3 runs both exploration modes over the benchmark with the same
// examination budget (0 = 200000).
func (h *Harness) Fig3(app string, budget int) (*ExplorationStats, error) {
	b, err := h.Benchmark(app)
	if err != nil {
		return nil, err
	}
	if budget == 0 {
		budget = 200000
	}
	gcfg := explore.DefaultConfig(h.Lib)
	gcfg.MaxExamined = budget
	h.exploreParallel(&gcfg)
	guided := explore.Explore(b.Program, gcfg)
	ncfg := explore.DefaultConfig(h.Lib)
	ncfg.Naive = true
	ncfg.MaxExamined = budget
	h.exploreParallel(&ncfg)
	naive := explore.Explore(b.Program, ncfg)

	st := &ExplorationStats{
		App:          app,
		Budget:       budget,
		NaiveBySize:  naive.Stats.BySize,
		GuidedBySize: guided.Stats.BySize,
		NaiveTotal:   naive.Stats.Examined,
		GuidedTotal:  guided.Stats.Examined,
	}
	for s := range st.NaiveBySize {
		if s > st.NaiveMaxSize {
			st.NaiveMaxSize = s
		}
	}
	for s := range st.GuidedBySize {
		if s > st.GuidedMaxSize {
			st.GuidedMaxSize = s
		}
	}
	return st, nil
}

// CumulativeAtSize returns how many candidates of size <= k each mode
// examined: the height of the Figure 3 curves at size k.
func (st *ExplorationStats) CumulativeAtSize(k int) (naive, guided int) {
	for s, n := range st.NaiveBySize {
		if s <= k {
			naive += n
		}
	}
	for s, n := range st.GuidedBySize {
		if s <= k {
			guided += n
		}
	}
	return naive, guided
}

// MultiFunctionResult compares one compile against a CFU set selected
// without and with merged multi-function candidates in the pool (the
// paper's future work). Native rows show that multi-function units rarely
// help the application that shaped them (both parents fit the budget
// anyway); cross rows show where generality pays.
type MultiFunctionResult struct {
	App, CFUSource string
	Single, Multi  float64
	MergedSelected int
}

// Label renders "app-source" or just "app" for native pairs.
func (r *MultiFunctionResult) Label() string {
	if r.App == r.CFUSource {
		return r.App
	}
	return r.App + "-" + r.CFUSource
}

// multiFuncMDES selects CFUs for source with merged multi-function
// candidates admitted, returning the MDES and how many merged units made
// the cut. Pairing and selection both mutate the shared candidate list,
// so the whole computation runs under the source's select lock.
func (h *Harness) multiFuncMDES(source string, budget float64) (*mdes.MDES, int, error) {
	cands, err := h.Candidates(source)
	if err != nil {
		return nil, 0, err
	}
	l := h.selLock(source)
	l.Lock()
	multi := cfu.BuildMultiFunction(cands, h.Lib, 0)
	sel := cfu.Select(multi, cfu.SelectOptions{Budget: budget, Mode: h.SelectMode, Lib: h.Lib})
	l.Unlock()
	merged := 0
	for _, c := range sel.CFUs {
		for _, n := range c.Shape.Nodes {
			if n.Class != 0 {
				merged++
				break
			}
		}
	}
	return mdes.FromSelection(source, budget, sel), merged, nil
}

// MultiFunctionStudy measures multi-function CFU selection at one budget
// point over a domain: every (app, CFU source) combination, native and
// cross, compiled with exact matching against the single-function and the
// multi-function hardware.
func (h *Harness) MultiFunctionStudy(domain string, budget float64) ([]*MultiFunctionResult, error) {
	apps, err := domainApps(domain)
	if err != nil {
		return nil, err
	}
	// One multi-function MDES per source, computed once and shared by the
	// (src, app) compile jobs through a local memo.
	type multiSel struct {
		m      *mdes.MDES
		merged int
	}
	var multiMu sync.Mutex
	multiCells := make(map[string]*memoCell[multiSel])
	out := make([]*MultiFunctionResult, len(apps)*len(apps))
	err = h.parallelFor(len(out), func(j int) error {
		src, app := apps[j/len(apps)], apps[j%len(apps)]
		ms, _, err := memoize(&multiMu, multiCells, src, func() (multiSel, error) {
			m, merged, err := h.multiFuncMDES(src, budget)
			return multiSel{m, merged}, err
		})
		if err != nil {
			return err
		}
		b, err := h.Benchmark(app)
		if err != nil {
			return err
		}
		r := &MultiFunctionResult{App: app, CFUSource: src, MergedSelected: ms.merged}
		repS, err := h.CompileOn(app, src, budget, compile.Options{})
		if err != nil {
			return err
		}
		r.Single = repS.Speedup
		_, repM, err := compile.Compile(b.Program, ms.m,
			compile.Options{Machine: h.Machine, Lib: h.Lib})
		if err != nil {
			return err
		}
		r.Multi = repM.Speedup
		out[j] = r
		return nil
	})
	// Partial results: rows for failed pairs stay nil; renderers skip them.
	return out, err
}

// MemoryCFUResult is one row of the relaxed-memory study.
type MemoryCFUResult struct {
	App string
	// NoMem is the speedup under the paper's no-memory-ops restriction;
	// WithMem allows loads inside CFUs (the future-work relaxation).
	NoMem, WithMem float64
	// MemCFUs counts selected CFUs containing loads.
	MemCFUs int
}

// MemoryCFUStudy measures the paper's proposed memory-restriction
// relaxation: native speedups with load-bearing CFUs allowed, verified in
// the functional simulator. nil apps means all benchmarks.
func (h *Harness) MemoryCFUStudy(apps []string, budget float64) ([]*MemoryCFUResult, error) {
	if apps == nil {
		apps = workloads.Names()
	}
	memLib := hwlib.MemoryEnabled()
	var out []*MemoryCFUResult
	for _, app := range apps {
		base, err := h.CompileOn(app, app, budget, compile.Options{})
		if err != nil {
			return nil, err
		}
		b, err := h.Benchmark(app)
		if err != nil {
			return nil, err
		}
		cfg := explore.DefaultConfig(memLib)
		h.exploreParallel(&cfg)
		res := explore.Explore(b.Program, cfg)
		cands := cfu.Combine(res, memLib, cfu.CombineOptions{})
		sel := cfu.Select(cands, cfu.SelectOptions{Budget: budget, Mode: h.SelectMode, Lib: memLib})
		m := mdes.FromSelection(app, budget, sel)
		r := &MemoryCFUResult{App: app, NoMem: base.Speedup}
		for _, spec := range m.CFUs {
			if spec.Shape.UsesMemory() {
				r.MemCFUs++
			}
		}
		outP, rep, err := compile.Compile(b.Program, m, compile.Options{Machine: h.Machine, Lib: memLib})
		if err != nil {
			return nil, err
		}
		for i := range b.Program.Blocks {
			if err := sim.Equivalent(b.Program.Blocks[i], outP.Blocks[i], 8, uint32(13*i+5)); err != nil {
				return nil, fmt.Errorf("experiment: memcfu %s block %s: %w",
					app, b.Program.Blocks[i].Name, err)
			}
		}
		r.WithMem = rep.Speedup
		out = append(out, r)
	}
	return out, nil
}

// UnrollResult is one row of the unrolling study: speedup with CFUs
// generated and exploited on the program unrolled by Factor.
type UnrollResult struct {
	App     string
	Factor  int
	Speedup float64
}

// UnrollStudy measures how loop unrolling (which enlarges basic blocks and
// exposes cross-iteration subgraphs, per §2's discussion of Goodwin and of
// unrolling-created large blocks) changes the attainable speedup at one
// budget. Speedups are relative to the unrolled baseline, so they isolate
// the CFU effect from the unrolling effect itself.
func (h *Harness) UnrollStudy(app string, factors []int, budget float64) ([]*UnrollResult, error) {
	b, err := h.Benchmark(app)
	if err != nil {
		return nil, err
	}
	var out []*UnrollResult
	for _, f := range factors {
		up, err := ir.UnrollProgram(b.Program, f)
		if err != nil {
			return nil, err
		}
		cfg := explore.DefaultConfig(h.Lib)
		if h.ExploreConfig != nil {
			cfg = *h.ExploreConfig
		}
		h.exploreParallel(&cfg)
		res := explore.Explore(up, cfg)
		cands := cfu.Combine(res, h.Lib, cfu.CombineOptions{})
		sel := cfu.Select(cands, cfu.SelectOptions{Budget: budget, Mode: h.SelectMode, Lib: h.Lib})
		m := mdes.FromSelection(app, budget, sel)
		_, rep, err := compile.Compile(up, m, compile.Options{Machine: h.Machine, Lib: h.Lib})
		if err != nil {
			return nil, err
		}
		out = append(out, &UnrollResult{App: app, Factor: f, Speedup: rep.Speedup})
	}
	return out, nil
}

// AblationPoint is one (budget, speedup) sample for a selection mode.
type AblationPoint struct {
	Mode    cfu.SelectMode
	Budget  float64
	Speedup float64
}

// SelectionAblation compares the selection heuristics (§3.4): greedy
// value/cost, greedy raw value, and the knapsack DP.
func (h *Harness) SelectionAblation(app string, budgets []float64) ([]AblationPoint, error) {
	cands, err := h.Candidates(app)
	if err != nil {
		return nil, err
	}
	b, err := h.Benchmark(app)
	if err != nil {
		return nil, err
	}
	modes := []cfu.SelectMode{cfu.GreedyRatio, cfu.GreedyValue, cfu.Knapsack}
	out := make([]AblationPoint, len(modes)*len(budgets))
	err = h.parallelFor(len(out), func(j int) error {
		mode, budget := modes[j/len(budgets)], budgets[j%len(budgets)]
		l := h.selLock(app)
		l.Lock()
		sel := cfu.Select(cands, cfu.SelectOptions{Budget: budget, Mode: mode})
		l.Unlock()
		m := mdes.FromSelection(app, budget, sel)
		_, rep, err := compile.Compile(b.Program, m, compile.Options{Machine: h.Machine, Lib: h.Lib})
		if err != nil {
			return err
		}
		out[j] = AblationPoint{Mode: mode, Budget: budget, Speedup: rep.Speedup}
		return nil
	})
	// Partial results: failed points stay zero-valued; the joined error
	// names each failed (mode, budget) job.
	return out, err
}

// GuideAblation compares guide-function weightings (§3.2): the paper's even
// split against skews that zero out single categories.
type GuideAblation struct {
	Name     string
	Weights  explore.GuideWeights
	Examined int
	Speedup  float64
}

// GuideWeightAblation runs the named weight settings on one app at the
// 15-adder point.
func (h *Harness) GuideWeightAblation(app string) ([]*GuideAblation, error) {
	b, err := h.Benchmark(app)
	if err != nil {
		return nil, err
	}
	cases := []*GuideAblation{
		{Name: "even", Weights: explore.EvenWeights()},
		{Name: "criticality-only", Weights: explore.GuideWeights{Criticality: 40}},
		{Name: "latency-heavy", Weights: explore.GuideWeights{Criticality: 5, Latency: 25, Area: 5, IO: 5}},
		{Name: "io-heavy", Weights: explore.GuideWeights{Criticality: 5, Latency: 5, Area: 5, IO: 25}},
	}
	for _, c := range cases {
		cfg := explore.DefaultConfig(h.Lib)
		cfg.Weights = c.Weights
		h.exploreParallel(&cfg)
		res := explore.Explore(b.Program, cfg)
		c.Examined = res.Stats.Examined
		cands := cfu.Combine(res, h.Lib, cfu.CombineOptions{})
		sel := cfu.Select(cands, cfu.SelectOptions{Budget: 15, Mode: h.SelectMode})
		m := mdes.FromSelection(app, 15, sel)
		_, rep, err := compile.Compile(b.Program, m, compile.Options{Machine: h.Machine, Lib: h.Lib})
		if err != nil {
			return nil, err
		}
		c.Speedup = rep.Speedup
	}
	return cases, nil
}

// SortedSizes returns the ascending subgraph sizes present in either mode.
func (st *ExplorationStats) SortedSizes() []int {
	seen := map[int]bool{}
	var out []int
	for s := range st.NaiveBySize {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	for s := range st.GuidedBySize {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return out
}
