package corpus

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
	"sync"

	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Key identifies one memoized block exploration: the block's program-order
// structure hash and the explorer's configuration signature. Both sides
// are content hashes, so the key is stable across processes and machines.
type Key struct {
	Block  string
	Config string
}

// String renders the key in its stored form.
func (k Key) String() string { return k.Block + "|" + k.Config }

// Candidate is one memoized candidate subgraph. Area and latency are kept
// as raw IEEE-754 bits: the explorer computes them by incremental
// accumulation, so replay must reproduce the exact bit pattern, not a
// recomputed (differently-rounded) value.
type Candidate struct {
	Members     []int  `json:"m"`
	AreaBits    uint64 `json:"a"`
	LatencyBits uint64 `json:"l"`
	Inputs      int    `json:"i"`
	Outputs     int    `json:"o"`
	// Shape is the candidate's canonical isomorphism-class hash
	// (ir.SubgraphFingerprint), used for cross-program aggregation only —
	// replay correctness never depends on it.
	Shape string `json:"s,omitempty"`
}

// Area returns the candidate's die area in adder units.
func (c *Candidate) Area() float64 { return math.Float64frombits(c.AreaBits) }

// Latency returns the candidate's critical-path delay in cycles.
func (c *Candidate) Latency() float64 { return math.Float64frombits(c.LatencyBits) }

// Savings returns the estimated cycles saved per execution were the
// candidate a CFU: one issue slot per member versus ceil(latency) cycles.
func (c *Candidate) Savings() int {
	cyc := int(math.Ceil(c.Latency()))
	if cyc < 1 {
		cyc = 1
	}
	return len(c.Members) - cyc
}

// Entry is the memoized outcome of exploring one block under one
// configuration: the recorded candidates in recording order, plus the
// cold-path effort counters for the statistics endpoint.
type Entry struct {
	Candidates []Candidate `json:"c"`
	Examined   int         `json:"e"`
	Pruned     int         `json:"p"`
}

// shapeAgg accumulates per-isomorphism-class statistics across every
// entry currently in memory.
type shapeAgg struct {
	count   int
	savings int
	minArea float64
}

// Corpus is a two-tier memo of explored blocks: a bounded in-memory LRU in
// front of an optional append-only disk store. All methods are safe for
// concurrent use.
type Corpus struct {
	mu         sync.Mutex
	maxEntries int
	entries    map[string]*list.Element // key → *lruItem element
	order      *list.List               // front = most recently used
	shapes     map[string]*shapeAgg
	disk       *diskStore // nil = memory only
	tel        *telemetry.Registry

	hits, misses, inserts, evictions int64
	loaded                           int64
	loadErrs, appendErrs             int
}

type lruItem struct {
	key string
	e   *Entry
}

// DefaultMaxEntries bounds the in-memory tier when Open is given no limit.
const DefaultMaxEntries = 4096

// Open returns a corpus backed by dir, loading every existing segment
// (tolerating torn tails and corrupt records — see Stats.LoadErrors) and
// starting a fresh segment for appends. An empty dir means memory-only.
// maxEntries bounds the in-memory LRU (<=0 = DefaultMaxEntries); the disk
// tier is append-only and unbounded. Open degrades rather than fails: disk
// trouble (including an injected "corpus" fault) yields a usable
// memory-only corpus, and only an unusable dir path returns an error.
func Open(dir string, maxEntries int) (*Corpus, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultMaxEntries
	}
	c := &Corpus{
		maxEntries: maxEntries,
		entries:    make(map[string]*list.Element),
		order:      list.New(),
		shapes:     make(map[string]*shapeAgg),
	}
	if dir == "" {
		return c, nil
	}
	disk, recs, loadErrs, err := openDisk(dir)
	if err != nil {
		return nil, err
	}
	c.loadErrs = loadErrs
	c.disk = disk
	for i := range recs {
		c.install(recs[i].Key, recs[i].Entry)
		c.loaded++
	}
	return c, nil
}

// SetTelemetry attaches a registry receiving hit/miss/insert counters and
// size gauges. Pass before serving traffic; not synchronized with lookups.
func (c *Corpus) SetTelemetry(r *telemetry.Registry) { c.tel = r }

// Lookup returns the memoized entry for key. The caller must treat the
// entry as read-only: it is shared with every other warm run of the key.
func (c *Corpus) Lookup(key Key) (*Entry, bool) {
	ks := key.String()
	c.mu.Lock()
	el, ok := c.entries[ks]
	var e *Entry
	if ok {
		c.order.MoveToFront(el)
		e = el.Value.(*lruItem).e
		c.hits++
	} else {
		c.misses++
	}
	c.mu.Unlock()
	c.tel.AddHitMiss("corpus.lookup", ok)
	return e, ok
}

// Insert memoizes e under key, persisting it to the disk tier when one is
// attached. The corpus takes ownership of e; callers must not mutate it
// afterwards. Re-inserting an existing key replaces its entry (latest
// wins, matching disk load order), so a rejected or stale entry heals on
// the next cold run instead of pinning the key forever.
func (c *Corpus) Insert(key Key, e *Entry) {
	ks := key.String()
	c.mu.Lock()
	c.install(ks, e)
	c.inserts++
	if c.disk != nil {
		if err := c.disk.append(ks, e); err != nil {
			c.appendErrs++
		}
	}
	entries := c.order.Len()
	c.mu.Unlock()
	c.tel.Add("corpus.inserts", 1)
	c.tel.SetGauge("corpus.entries", float64(entries))
}

// install adds (or replaces) an in-memory entry and applies the LRU bound.
// Callers hold c.mu.
func (c *Corpus) install(ks string, e *Entry) {
	if el, ok := c.entries[ks]; ok {
		c.unaccountShapes(el.Value.(*lruItem).e)
		el.Value.(*lruItem).e = e
		c.order.MoveToFront(el)
		c.accountShapes(e)
		return
	}
	c.entries[ks] = c.order.PushFront(&lruItem{key: ks, e: e})
	c.accountShapes(e)
	for c.order.Len() > c.maxEntries {
		back := c.order.Back()
		it := back.Value.(*lruItem)
		c.unaccountShapes(it.e)
		c.order.Remove(back)
		delete(c.entries, it.key)
		c.evictions++
	}
}

func (c *Corpus) accountShapes(e *Entry) {
	for i := range e.Candidates {
		cand := &e.Candidates[i]
		if cand.Shape == "" {
			continue
		}
		agg := c.shapes[cand.Shape]
		if agg == nil {
			agg = &shapeAgg{minArea: math.Inf(1)}
			c.shapes[cand.Shape] = agg
		}
		agg.count++
		agg.savings += cand.Savings()
		if a := cand.Area(); a < agg.minArea {
			agg.minArea = a
		}
	}
}

func (c *Corpus) unaccountShapes(e *Entry) {
	for i := range e.Candidates {
		cand := &e.Candidates[i]
		if cand.Shape == "" {
			continue
		}
		agg := c.shapes[cand.Shape]
		if agg == nil {
			continue
		}
		agg.count--
		agg.savings -= cand.Savings()
		if agg.count <= 0 {
			delete(c.shapes, cand.Shape)
		}
		// minArea is not recomputed on eviction: it stays a lower bound,
		// which is all the stats endpoint claims.
	}
}

// ShapeStat summarizes one candidate isomorphism class currently resident
// in memory.
type ShapeStat struct {
	// Shape is the canonical subgraph hash (ir.SubgraphFingerprint).
	Shape string `json:"shape"`
	// Count is how many memoized candidates share the shape.
	Count int `json:"count"`
	// Savings is the summed per-execution cycle savings over those
	// candidates.
	Savings int `json:"savings"`
	// MinArea is the smallest area (adder units) seen for the shape.
	MinArea float64 `json:"min_area"`
}

// Stats is a point-in-time snapshot of the corpus.
type Stats struct {
	Dir          string      `json:"dir,omitempty"`
	Entries      int         `json:"entries"`
	MaxEntries   int         `json:"max_entries"`
	Candidates   int         `json:"candidates"`
	ShapeClasses int         `json:"shape_classes"`
	Hits         int64       `json:"hits"`
	Misses       int64       `json:"misses"`
	Inserts      int64       `json:"inserts"`
	Evictions    int64       `json:"evictions"`
	Loaded       int64       `json:"loaded"`
	LoadErrors   int         `json:"load_errors"`
	AppendErrors int         `json:"append_errors"`
	Segments     int         `json:"segments"`
	DiskBytes    int64       `json:"disk_bytes"`
	TopShapes    []ShapeStat `json:"top_shapes,omitempty"`
}

// maxTopShapes bounds the shape leaderboard in Stats.
const maxTopShapes = 8

// Stats returns a snapshot of sizes, counters, and the highest-savings
// isomorphism classes.
func (c *Corpus) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Entries:      c.order.Len(),
		MaxEntries:   c.maxEntries,
		ShapeClasses: len(c.shapes),
		Hits:         c.hits,
		Misses:       c.misses,
		Inserts:      c.inserts,
		Evictions:    c.evictions,
		Loaded:       c.loaded,
		LoadErrors:   c.loadErrs,
		AppendErrors: c.appendErrs,
	}
	for el := c.order.Front(); el != nil; el = el.Next() {
		s.Candidates += len(el.Value.(*lruItem).e.Candidates)
	}
	for shape, agg := range c.shapes {
		s.TopShapes = append(s.TopShapes, ShapeStat{
			Shape: shape, Count: agg.count, Savings: agg.savings, MinArea: agg.minArea,
		})
	}
	sort.Slice(s.TopShapes, func(i, j int) bool {
		a, b := s.TopShapes[i], s.TopShapes[j]
		if a.Savings != b.Savings {
			return a.Savings > b.Savings
		}
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		return a.Shape < b.Shape
	})
	if len(s.TopShapes) > maxTopShapes {
		s.TopShapes = s.TopShapes[:maxTopShapes]
	}
	if c.disk != nil {
		s.Dir = c.disk.dir
		s.Segments = c.disk.segments
		s.DiskBytes = c.disk.bytes
	}
	return s
}

// Close flushes and closes the disk tier. The corpus stays usable as a
// memory-only store afterwards.
func (c *Corpus) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.disk == nil {
		return nil
	}
	err := c.disk.close()
	c.disk = nil
	return err
}

// BlockHash returns the program-order structure hash of b: opcodes,
// operand wiring (producer indices, register names, immediates), live-out
// destinations, custom-op identities, and the profile weight. Unlike
// ir.Fingerprint it is deliberately order-sensitive — corpus entries
// replay as op-index sets, so any reordering must produce a new key.
func BlockHash(b *ir.Block) string {
	pos := make(map[*ir.Op]int, len(b.Ops))
	for i, op := range b.Ops {
		pos[op] = i
	}
	buf := make([]byte, 0, 32*len(b.Ops)+16)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(b.Weight))
	buf = binary.AppendUvarint(buf, uint64(len(b.Ops)))
	for _, op := range b.Ops {
		buf = binary.AppendUvarint(buf, uint64(op.Code))
		if op.Custom != nil {
			buf = append(buf, 0x01)
			buf = binary.AppendUvarint(buf, uint64(len(op.Custom.Name)))
			buf = append(buf, op.Custom.Name...)
			buf = binary.AppendVarint(buf, int64(op.Custom.Latency))
			buf = binary.AppendVarint(buf, int64(op.Custom.NumOut))
		} else {
			buf = append(buf, 0x00)
		}
		buf = binary.AppendUvarint(buf, uint64(len(op.Args)))
		for _, a := range op.Args {
			buf = append(buf, byte(a.Kind))
			switch a.Kind {
			case ir.FromOp:
				buf = binary.AppendVarint(buf, int64(pos[a.X]))
				buf = binary.AppendVarint(buf, int64(a.Idx))
			case ir.FromReg:
				buf = binary.AppendUvarint(buf, uint64(a.Reg))
			case ir.Imm:
				buf = binary.LittleEndian.AppendUint32(buf, a.Val)
			}
		}
		buf = binary.AppendUvarint(buf, uint64(op.Dest))
		buf = binary.AppendUvarint(buf, uint64(len(op.Dests)))
		for _, r := range op.Dests {
			buf = binary.AppendUvarint(buf, uint64(r))
		}
	}
	sum := sha256.Sum256(buf)
	return hex.EncodeToString(sum[:])
}
