// Audio domain walk-through: the ADPCM encoder/decoder pair, the paper's
// best case (1.94x for rawdaudio). Shows the area sweep, the encoder and
// decoder sharing each other's hardware, and where the speedup comes from.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)

	// Native area sweep for the decoder.
	h := experiment.NewHarness()
	sweep, err := h.Sweep("rawdaudio", "rawdaudio", experiment.Budgets1to15())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rawdaudio speedup vs CFU area budget (paper peaks at 1.94x):")
	for _, p := range sweep.Points {
		bar := ""
		for i := 0.0; i < (p.Speedup-1)*40; i++ {
			bar += "#"
		}
		fmt.Printf("  %2.0f adders  %.2fx  %s\n", p.Budget, p.Speedup, bar)
	}
	fmt.Println()

	// The encoder and decoder share predictor-update logic, so each
	// should run well on hardware designed for the other.
	dec, err := workloads.ByName("rawdaudio")
	if err != nil {
		log.Fatal(err)
	}
	enc, err := workloads.ByName("rawcaudio")
	if err != nil {
		log.Fatal(err)
	}
	mEnc, err := core.GenerateMDES(enc.Program, core.Config{Budget: 15})
	if err != nil {
		log.Fatal(err)
	}
	for _, mode := range []struct {
		name              string
		variants, classes bool
	}{
		{"exact matching", false, false},
		{"with subsumed subgraphs", true, false},
		{"with wildcards + subsumed", true, true},
	} {
		_, rep, err := core.CompileWith(dec.Program, mEnc, core.Config{
			UseVariants:      mode.variants,
			UseOpcodeClasses: mode.classes,
			Verify:           true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rawdaudio on rawcaudio's CFUs, %-28s %.2fx (%d exact + %d variant matches)\n",
			mode.name+":", rep.Speedup, rep.ExactReplacements, rep.VariantReplacements)
	}
	fmt.Println("\nThe paper reports 1.63x for rawdaudio on rawcaudio's CFUs. Here the")
	fmt.Println("reuse is even better because the IMA-ADPCM decoder's predictor update")
	fmt.Println("is literally a subset of the encoder's, so the encoder's CFUs cover")
	fmt.Println("the whole decoder hot path exactly (see EXPERIMENTS.md).")
}
