package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Reset()
	if err := Fire("explore", "blowfish"); err != nil {
		t.Fatalf("disabled Fire returned %v", err)
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	restore, err := Enable("explore:sha=error")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	if err := Fire("explore", "blowfish"); err != nil {
		t.Fatalf("non-matching key fired: %v", err)
	}
	if err := Fire("compile", "sha"); err != nil {
		t.Fatalf("non-matching site fired: %v", err)
	}
	err = Fire("explore", "sha")
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("got %v, want *InjectedError", err)
	}
	if inj.Site != "explore" || inj.Key != "sha" {
		t.Fatalf("injected error identifies %s:%s", inj.Site, inj.Key)
	}
	if Fired("explore", "sha") != 1 {
		t.Fatalf("fired count = %d, want 1", Fired("explore", "sha"))
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	restore, err := Enable("select:*=panic")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected injected panic")
		}
	}()
	Fire("select", "anything")
}

func TestSlowMode(t *testing.T) {
	Reset()
	restore, err := Enable("compile:crc=slow:30ms")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	t0 := time.Now()
	if err := Fire("compile", "crc"); err != nil {
		t.Fatalf("slow mode returned %v", err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("slow injection returned after %v, want >= 30ms", d)
	}
}

func TestRestoreRemovesOnlyItsRules(t *testing.T) {
	Reset()
	r1, err := Enable("explore:a=error")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Enable("explore:b=error")
	if err != nil {
		t.Fatal(err)
	}
	r2()
	if err := Fire("explore", "b"); err != nil {
		t.Fatalf("restored rule still fires: %v", err)
	}
	if err := Fire("explore", "a"); err == nil {
		t.Fatal("outer rule was removed by inner restore")
	}
	r1()
	if err := Fire("explore", "a"); err != nil {
		t.Fatalf("rule fires after restore: %v", err)
	}
}

func TestBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"explore", "explore=panic", "a:b=frobnicate", "a:b=slow:xyz",
		"a:b=hang:xyz", "a:b=flaky:0", "a:b=flaky:x", "a:b=kill:-1", "a:b=kill:9000",
	} {
		if _, err := Enable(spec); err == nil {
			t.Errorf("Enable(%q) accepted a malformed spec", spec)
			Reset()
		}
	}
}

// hang is slow with a default long enough to outlast any per-attempt
// timeout; the parser must accept an explicit short duration for tests.
func TestHangMode(t *testing.T) {
	Reset()
	restore, err := Enable("replica:r2=hang:30ms")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	t0 := time.Now()
	if err := Fire("replica", "r2"); err != nil {
		t.Fatalf("hang mode returned %v", err)
	}
	if d := time.Since(t0); d < 30*time.Millisecond {
		t.Fatalf("hang injection returned after %v, want >= 30ms", d)
	}
}

// flaky:N fails exactly every Nth firing, deterministically, so a
// robustness run is reproducible.
func TestFlakyModeIsDeterministicEveryNth(t *testing.T) {
	Reset()
	restore, err := Enable("replica:r3=flaky:3")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	var pattern []bool
	for i := 0; i < 9; i++ {
		pattern = append(pattern, Fire("replica", "r3") != nil)
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("flaky pattern = %v, want %v", pattern, want)
		}
	}
	err = Fire("replica", "r3")
	_ = err
	var inj *InjectedError
	restore2, _ := Enable("replica:always=flaky:1")
	defer restore2()
	if err := Fire("replica", "always"); !errors.As(err, &inj) {
		t.Fatalf("flaky:1 returned %v, want *InjectedError on every call", err)
	}
}

// The kill spec must parse (CI arms it on real replica processes); firing
// it in-process would end the test binary, so only parsing is checked.
func TestKillSpecParses(t *testing.T) {
	Reset()
	restore, err := Enable("replica:r2=kill")
	if err != nil {
		t.Fatal(err)
	}
	restore()
	restore, err = Enable("replica:r2=kill:1")
	if err != nil {
		t.Fatal(err)
	}
	restore()
}
