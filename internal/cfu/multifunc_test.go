package cfu

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/graph"
	"repro/internal/hwlib"
	"repro/internal/ir"
)

// wildcardProgram holds two hot blocks with and-add and and-sub chains, so
// a multi-function and-[addsub] unit can serve both.
func wildcardProgram() *ir.Program {
	p := ir.NewProgram("wc")
	b1 := p.AddBlock("hot1", 1000)
	x, y, z := b1.Arg(ir.R(1)), b1.Arg(ir.R(2)), b1.Arg(ir.R(3))
	b1.Def(ir.R(4), b1.Add(b1.And(x, y), z))
	b2 := p.AddBlock("hot2", 900)
	u, v, w := b2.Arg(ir.R(1)), b2.Arg(ir.R(2)), b2.Arg(ir.R(3))
	b2.Def(ir.R(4), b2.Sub(b2.And(u, v), w))
	return p
}

func buildCandidates(t *testing.T, p *ir.Program) []*CFU {
	t.Helper()
	res := explore.Explore(p, explore.DefaultConfig(hwlib.Default()))
	return Combine(res, hwlib.Default(), CombineOptions{})
}

func TestBuildMultiFunctionMergesPairs(t *testing.T) {
	cands := buildCandidates(t, wildcardProgram())
	n0 := len(cands)
	merged := BuildMultiFunction(cands, hwlib.Default(), 0)
	if len(merged) <= n0 {
		t.Fatal("no multi-function candidates were created")
	}
	var mf *CFU
	for _, c := range merged[n0:] {
		for _, node := range c.Shape.Nodes {
			if node.Class != 0 {
				mf = c
			}
		}
	}
	if mf == nil {
		t.Fatal("merged candidate has no class node")
	}
	// The merged unit inherits occurrences from both parents: its value
	// must exceed either single-function parent's.
	var andAdd, andSub *CFU
	for _, c := range cands {
		switch c.Shape.Mnemonic() {
		case "and-add":
			andAdd = c
		case "and-sub":
			andSub = c
		}
	}
	if andAdd == nil || andSub == nil {
		t.Skip("parent patterns not discovered")
	}
	var best *CFU
	for _, c := range merged[n0:] {
		if c.Shape.Mnemonic() == "and-[add]" || c.Shape.Mnemonic() == "and-[sub]" {
			best = c
		}
	}
	if best == nil {
		t.Fatalf("and-[addsub] merge missing; merged: %d candidates", len(merged)-n0)
	}
	if best.Value <= andAdd.Value || best.Value <= andSub.Value {
		t.Fatalf("merged value %v not above parents (%v, %v)",
			best.Value, andAdd.Value, andSub.Value)
	}
	// Class hardware costs more than either single-function parent.
	if best.Area <= andAdd.Area {
		t.Fatalf("merged area %v not above parent %v", best.Area, andAdd.Area)
	}
}

func TestMultiFunctionShapeCosts(t *testing.T) {
	lib := hwlib.Default()
	s := &graph.Shape{
		Nodes: []graph.Node{
			{Code: ir.And, Ins: []graph.Ref{{Kind: graph.RefInput, Index: 0}, {Kind: graph.RefInput, Index: 1}}},
			{Code: ir.Add, Class: uint8(hwlib.ClassAddSub), Ins: []graph.Ref{{Kind: graph.RefNode, Index: 0}, {Kind: graph.RefInput, Index: 2}}},
		},
		NumInputs: 3, Outputs: []int{1},
	}
	if got := classAwareArea(s, lib); got <= lib.Area(ir.And)+lib.Area(ir.Add) {
		t.Fatalf("class area %v should exceed single-function area", got)
	}
	if got := classAwareCycles(s, lib); got < 1 {
		t.Fatalf("cycles = %d", got)
	}
	if s.Mnemonic() != "and-[add]" {
		t.Fatalf("mnemonic = %q", s.Mnemonic())
	}
}

func TestMultiFunctionMatchesBothOpcodes(t *testing.T) {
	lib := hwlib.Default()
	pat := &graph.Shape{
		Nodes: []graph.Node{
			{Code: ir.And, Ins: []graph.Ref{{Kind: graph.RefInput, Index: 0}, {Kind: graph.RefInput, Index: 1}}},
			{Code: ir.Add, Class: uint8(hwlib.ClassAddSub), Ins: []graph.Ref{{Kind: graph.RefNode, Index: 0}, {Kind: graph.RefInput, Index: 2}}},
		},
		NumInputs: 3, Outputs: []int{1},
	}
	classOf := func(c ir.Opcode) uint8 { return uint8(lib.ClassOf(c)) }
	for _, code := range []ir.Opcode{ir.Add, ir.Sub, ir.Rsb} {
		b := ir.NewBlock("t", 1)
		x, y, z := b.Arg(ir.R(1)), b.Arg(ir.R(2)), b.Arg(ir.R(3))
		v := b.And(x, y)
		b.Def(ir.R(4), b.Emit(code, v, z).Out())
		d := ir.Analyze(b)
		ms := graph.FindMatches(d, pat, graph.MatchOptions{ClassOf: classOf})
		if len(ms) != 1 {
			t.Fatalf("%s: matches = %d, want 1", code, len(ms))
		}
	}
	// A non-class opcode (xor) must not match the class node.
	b := ir.NewBlock("t", 1)
	x, y, z := b.Arg(ir.R(1)), b.Arg(ir.R(2)), b.Arg(ir.R(3))
	b.Def(ir.R(4), b.Xor(b.And(x, y), z))
	d := ir.Analyze(b)
	if ms := graph.FindMatches(d, pat, graph.MatchOptions{ClassOf: classOf}); len(ms) != 0 {
		t.Fatal("xor matched an addsub class node")
	}
}

func TestMultiFunctionSelectionPreference(t *testing.T) {
	// With a budget fitting one multi-function unit but not two
	// single-function units plus their value... verify selection includes
	// the merged candidate when it is strictly better.
	cands := buildCandidates(t, wildcardProgram())
	merged := BuildMultiFunction(cands, hwlib.Default(), 0)
	sel := Select(merged, SelectOptions{Budget: 15})
	foundClassNode := false
	for _, c := range sel.CFUs {
		for _, n := range c.Shape.Nodes {
			if n.Class != 0 {
				foundClassNode = true
			}
		}
	}
	if !foundClassNode {
		t.Fatal("selection ignored the multi-function candidate despite higher value/cost")
	}
}
