// Package explore implements the dataflow-graph design-space exploration
// at the heart of the paper's hardware compiler (§3.1–§3.2, Figure 3): from
// every DFG node, grow candidate subgraphs one adjacent node at a time,
// ranking each growth *direction* with the four-category guide function
// (criticality, latency, area, input/output — 10 points per category) and
// refusing directions that score below half the maximum. Pruning directions
// rather than candidates is the paper's stated advantage over Sun-style
// enumeration: whole subtrees of the search space are skipped without being
// visited.
//
// Main entry points:
//
//   - Explore: per-program entry; returns a Result with candidates, guide
//     scores, and Stats (nodes examined, directions pruned, truncation).
//   - Config / DefaultConfig: guide weights, Constraints (input/output port
//     limits, §3.1), anytime controls (Ctx, Deadline, MaxCandidates — all
//     yield best-so-far results tagged Truncated), Workers and Spare for
//     block-level parallelism.
//   - Constraints / DefaultConstraints: the 5-input/3-output port limits.
//   - Tokens (NewTokens / Acquire / TryAcquire / Release): the counting
//     semaphore behind the two-level -j model — sweep-level jobs and
//     block-level workers, plus concurrent service requests, all draw from
//     one shared pool (docs/ARCHITECTURE.md).
package explore
