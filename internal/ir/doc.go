// Package ir defines the generic RISC intermediate representation consumed
// by the instruction-set customization system — the paper's input artifact
// (§2, Figure 1): profiled, unscheduled assembly code over virtual
// registers, organized as basic blocks whose operations form an explicit
// dataflow graph (DFG). Operations are primitive, atomic RISC operations
// (Add, Xor, Load, ...); constants and live-in registers appear as operands
// rather than nodes, so every DFG node is a real computation.
//
// Main entry points:
//
//   - Program / Block / Op: the representation itself, with a typed builder
//     API (Block.Add, Block.Xor, ...) for authoring kernels by hand.
//   - Analyze: per-block DFG metadata — def/use edges, criticality (slack),
//     longest paths — consumed by the explorer's guide function (§3.2).
//   - Validate: the structural boundary guard every public pipeline entry
//     point runs (operand counts, acyclicity, in-range references).
//   - Optimize: CSE and dead-code elimination ahead of matching.
//   - Fingerprint: the canonical content hash behind the customization
//     service's result cache (internal/server).
//   - Unroll: the loop-unrolling transform of the paper's §2 discussion.
//   - WriteDot: Graphviz export with matched CFUs shaded (cmd/iscdot).
package ir
