package experiment

import (
	"testing"

	"repro/internal/workloads"
)

// TestPaperShapes encodes the qualitative claims of the paper's evaluation
// as assertions, so refactoring cannot silently change who wins. It runs
// the 15-adder point for every benchmark.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape regression skipped in -short mode")
	}
	h := NewHarness()
	speedup := map[string]float64{}
	for _, app := range workloads.Names() {
		r, err := h.Sweep(app, app, []float64{15})
		if err != nil {
			t.Fatal(err)
		}
		speedup[app] = r.Points[0].Speedup
	}

	domAvg := func(d string) float64 {
		apps, _ := domainApps(d)
		s := 0.0
		for _, a := range apps {
			s += speedup[a]
		}
		return s / float64(len(apps))
	}

	// Claim 1 (§5): encryption and audio benefit most; network least.
	enc, net := domAvg(workloads.DomainEncryption), domAvg(workloads.DomainNetwork)
	aud, img := domAvg(workloads.DomainAudio), domAvg(workloads.DomainImage)
	if enc <= net || aud <= net {
		t.Errorf("domain ordering broken: enc %.2f aud %.2f net %.2f img %.2f", enc, aud, net, img)
	}

	// Claim 2 (§6): every application sees a real speedup on its own CFUs
	// and the average is substantial (paper: 1.47 mean, 1.94 best).
	sum, best := 0.0, 0.0
	for app, s := range speedup {
		if s < 1.0 {
			t.Errorf("%s: slowdown %v", app, s)
		}
		sum += s
		if s > best {
			best = s
		}
	}
	mean := sum / float64(len(speedup))
	if mean < 1.3 || best < 1.8 {
		t.Errorf("headline numbers off: mean %.2f (paper 1.47), best %.2f (paper 1.94)", mean, best)
	}

	// Claim 3 (§5): blowfish and rijndael land near the paper's values on
	// this substrate (calibrated in EXPERIMENTS.md).
	if s := speedup["blowfish"]; s < 1.4 || s > 1.9 {
		t.Errorf("blowfish drifted to %.2f (paper 1.62)", s)
	}
	if s := speedup["rijndael"]; s < 1.5 || s > 2.1 {
		t.Errorf("rijndael drifted to %.2f (paper 1.87)", s)
	}

	// Claim 4 (§5): cross-compiles do not beat native compiles, modulo the
	// two documented kernel-sharing exceptions.
	exceptions := map[string]bool{
		"rijndael-blowfish":   true, // identical byte-extract network
		"rawdaudio-rawcaudio": true, // decoder update ⊂ encoder update
	}
	for _, d := range workloads.DomainNames() {
		apps, _ := domainApps(d)
		for _, app := range apps {
			for _, src := range apps {
				if app == src {
					continue
				}
				r, err := h.Sweep(app, src, []float64{15})
				if err != nil {
					t.Fatal(err)
				}
				cross := r.Points[0].Speedup
				if cross > speedup[app]+1e-9 && !exceptions[app+"-"+src] {
					t.Errorf("%s-%s: cross %.2f beats native %.2f", app, src, cross, speedup[app])
				}
			}
		}
	}
}
