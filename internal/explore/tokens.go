package explore

import "context"

// Tokens is a small non-blocking counting semaphore used to share one
// goroutine budget between the two parallelism levels: the experiment
// harness's across-benchmark worker pool and the explorer's within-benchmark
// block workers. Each running goroutine is meant to hold one token, so the
// total degree of parallelism never exceeds the pool size no matter which
// level claims it. All methods are safe on a nil receiver (a nil pool
// grants nothing).
type Tokens struct {
	ch chan struct{}
}

// NewTokens returns a pool of n tokens (n < 1 yields an empty pool).
func NewTokens(n int) *Tokens {
	if n < 1 {
		n = 0
	}
	t := &Tokens{ch: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		t.ch <- struct{}{}
	}
	return t
}

// TryAcquire takes a token without blocking, reporting success. It never
// waits: a caller that fails to get a token simply stays serial, which
// keeps the two-level scheme deadlock-free.
func (t *Tokens) TryAcquire() bool {
	if t == nil {
		return false
	}
	select {
	case <-t.ch:
		return true
	default:
		return false
	}
}

// Acquire blocks until a token is available or ctx is done, reporting
// whether a token was obtained. It is the admission gate for callers that
// must run rather than stay serial — the customization service queues each
// request here so accepted work never oversubscribes the pool. A nil pool
// grants nothing (mirroring TryAcquire).
func (t *Tokens) Acquire(ctx context.Context) bool {
	if t == nil {
		return false
	}
	select {
	case <-t.ch:
		return true
	case <-ctx.Done():
		return false
	}
}

// Release returns a previously acquired token.
func (t *Tokens) Release() {
	if t == nil {
		return
	}
	select {
	case t.ch <- struct{}{}:
	default:
		// Over-release is a programming error; dropping the token keeps
		// the pool bounded instead of blocking the releaser.
	}
}
