package explore

import (
	"context"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/corpus"
	"repro/internal/hwlib"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Constraints are the externally supplied design limits on any single CFU.
type Constraints struct {
	// MaxInputs and MaxOutputs bound the register-file read and write
	// ports. The paper's experiments use 5 and 3.
	MaxInputs  int
	MaxOutputs int
	// MaxArea caps one CFU's die area in adder units (0 = unlimited).
	MaxArea float64
	// MaxOps caps the subgraph size (0 = unlimited). The limit study uses
	// unlimited everything.
	MaxOps int
}

// DefaultConstraints returns the paper's experimental limits.
func DefaultConstraints() Constraints {
	return Constraints{MaxInputs: 5, MaxOutputs: 3}
}

// DefaultConfig returns the configuration the experiments use: the paper's
// port constraints, evenly weighted guide categories, and a moderate fanout
// cap (the guide ranks directions; the fanout bound takes the best few, the
// paper's lever for curbing exponential growth in cheap-operation regions).
func DefaultConfig(lib *hwlib.Library) Config {
	return Config{
		Constraints: DefaultConstraints(),
		Lib:         lib,
		Fanout:      UniformFanout(4),
		FanoutDesc:  "uniform:4",
	}
}

// FanoutPolicy bounds how many growth directions a candidate may take,
// given its current size and its block's profile weight. Returning 0 means
// unlimited. Varying the policy by size or weight is the flexibility the
// paper highlights over single-strategy explorers.
type FanoutPolicy func(size int, blockWeight float64) int

// UniformFanout allows at most k directions everywhere.
func UniformFanout(k int) FanoutPolicy {
	return func(int, float64) int { return k }
}

// DepthDecayFanout allows k0 directions for seeds, decaying by one per
// grown node, never below 1: broad early search, focused late search.
func DepthDecayFanout(k0 int) FanoutPolicy {
	return func(size int, _ float64) int {
		k := k0 - (size - 1)
		if k < 1 {
			k = 1
		}
		return k
	}
}

// WeightScaledFanout allows more directions in hot blocks: k directions
// when the block weight is at least hot, otherwise k/2 (minimum 1).
func WeightScaledFanout(k int, hot float64) FanoutPolicy {
	return func(_ int, w float64) int {
		if w >= hot {
			return k
		}
		if k/2 < 1 {
			return 1
		}
		return k / 2
	}
}

// Config controls one exploration run.
type Config struct {
	Constraints
	// Lib supplies cost estimates and CFU eligibility. Required.
	Lib *hwlib.Library
	// Strategy picks the candidate-discovery algorithm: StrategyEnumerate
	// (the default; "" means the same) or StrategyImprove. Validate names
	// arriving from a configuration boundary with ValidStrategy first:
	// Explore panics on an unknown name rather than silently falling back.
	Strategy string
	// CostModel picks how the guide scoring prices candidates: CostArea
	// (the default; "" means the same) prices by die area as in the paper,
	// CostUarch by pipeline-port and latency fit (microarchitecture-aware).
	CostModel string
	// Seed perturbs the improve strategy's restart schedule. Runs with the
	// same seed are deterministic; enumeration ignores it entirely.
	Seed int64
	// Naive disables the guide function, growing in all directions; used
	// by the Figure 3 comparison. Protect with MaxExamined.
	Naive bool
	// Threshold is the minimum guide score (out of 40) a direction needs
	// to be explored. 0 means the paper's default of half the points (20).
	Threshold float64
	// Weights scales each guide category (criticality, latency, area, IO).
	// Zero value means the paper's even 10/10/10/10 split.
	Weights GuideWeights
	// Fanout bounds growth directions (nil = unlimited).
	Fanout FanoutPolicy
	// FanoutDesc names the Fanout policy for corpus keying (e.g.
	// "uniform:4"); policies are funcs and cannot be hashed themselves.
	// Callers installing a custom Fanout must give each distinct policy a
	// distinct descriptor, or leave it empty to bypass the corpus — an
	// empty descriptor with a non-nil Fanout disables memoization rather
	// than risking aliased entries.
	FanoutDesc string
	// Corpus, when non-nil, memoizes completed per-block exploration
	// results keyed by block structure and configuration. Warm hits replay
	// the memoized candidates byte-identically to a cold search; only
	// wall-clock time and the examined/pruned effort counters change. It
	// is bypassed (cold path) under a MaxCandidates budget and for
	// undescribed custom fanout policies; see corpusUsable.
	Corpus *corpus.Corpus
	// OvershootIO lets candidates exceed the port limits by this much
	// while growing (reconvergence can bring ports back down); such
	// intermediates are explored but never recorded. Default 2.
	OvershootIO int
	// MaxExamined aborts a block's exploration after this many distinct
	// subgraphs (0 = 200000); a safety valve for naive mode.
	MaxExamined int
	// CandidatePrune, when in (0,1], switches to Sun-style pruning for the
	// ablation study: after each growth wave, only candidates whose
	// estimated merit reaches this fraction of the best merit seen so far
	// are kept for further growth. Directions are then not pruned.
	CandidatePrune float64
	// Telemetry, when non-nil, receives the exploration span and the
	// examined/pruned/recorded counters.
	Telemetry *telemetry.Registry
	// Workers bounds the number of goroutines exploring one program's
	// blocks concurrently (0 or 1 = serial). Per-block results are merged
	// in block order, so the output is byte-identical at every setting.
	// Anytime budgets (Ctx/Deadline/MaxCandidates) force a serial run:
	// cross-block truncation points stay deterministic that way.
	Workers int
	// Spare, when non-nil, gates the extra block workers: each one must
	// win a token from this pool for its lifetime. The experiment harness
	// hands its own worker pool here so the two parallelism levels share
	// one -j budget instead of oversubscribing. nil means Workers is the
	// only bound.
	Spare *Tokens

	// Ctx, when non-nil, lets the caller cancel exploration; the run stops
	// at the next budget check and returns its best-so-far candidates with
	// Stats.Truncated set. nil means context.Background().
	Ctx context.Context
	// Deadline bounds one Explore call's wall-clock time (0 = none). The
	// exploration is anytime: on expiry the candidates recorded so far are
	// returned, tagged Truncated, rather than the run aborting.
	Deadline time.Duration
	// MaxCandidates stops exploration after recording this many
	// constraint-satisfying candidates across the whole program (0 =
	// unlimited); the result is tagged Truncated.
	MaxCandidates int
}

// GuideWeights are the per-category points of the guide function.
type GuideWeights struct {
	Criticality, Latency, Area, IO float64
}

// EvenWeights is the paper's recommended balance.
func EvenWeights() GuideWeights { return GuideWeights{10, 10, 10, 10} }

func (w GuideWeights) total() float64 { return w.Criticality + w.Latency + w.Area + w.IO }

func (w GuideWeights) orEven() GuideWeights {
	if w.total() == 0 {
		return EvenWeights()
	}
	return w
}

// Candidate is one discovered subgraph, annotated with hardware estimates,
// as handed to the candidate-combination stage.
type Candidate struct {
	Block   *ir.Block
	DFG     *ir.DFG
	Set     ir.OpSet
	Area    float64
	Latency float64
	Inputs  int
	Outputs int
}

// Stats records exploration effort for the Figure 3 study.
type Stats struct {
	// Examined is the number of distinct subgraphs visited.
	Examined int
	// BySize counts examined subgraphs by node count.
	BySize map[int]int
	// PrunedDirections counts growth directions rejected by the guide.
	PrunedDirections int
	// Recorded is the number of constraint-satisfying candidates kept.
	Recorded int
	// Truncated reports that an anytime budget (deadline, cancellation, or
	// MaxCandidates) ended the run early; the candidates recorded so far
	// are still valid. The MaxExamined safety valve does NOT set it: that
	// cap predates the budgets and bounds pathological blocks even in
	// default runs.
	Truncated bool
	// TruncatedBy names the exhausted budget: "deadline", "canceled", or
	// "max-candidates".
	TruncatedBy string
	// CorpusHits counts blocks whose candidates were replayed from the
	// corpus without searching; CorpusMisses counts blocks that ran the
	// cold path with a corpus attached. Both stay zero when no corpus is
	// configured or it is bypassed.
	CorpusHits, CorpusMisses int
	// PoolHits and PoolMisses count work-item allocations served from the
	// per-block freelist versus fresh from the heap.
	PoolHits, PoolMisses int64
	// VisitedCollisions counts hash-probe steps over non-matching entries
	// in the visited-subgraph set.
	VisitedCollisions int64
}

// Result is the output of exploring one program.
type Result struct {
	Candidates []Candidate
	Stats      Stats
}

// budget is the anytime-exploration bookkeeping shared by every block of
// one Explore call: a context (carrying any deadline) and a program-wide
// candidate cap. Context polls are amortized over checkEvery worklist pops
// so the hot loop pays an integer decrement, not a channel select.
type budget struct {
	ctx           context.Context
	cancel        context.CancelFunc
	maxCandidates int
	countdown     int
}

const budgetCheckEvery = 64

// newBudget returns nil when cfg sets no anytime budget, keeping the
// default path allocation- and branch-free.
func newBudget(cfg Config) *budget {
	if cfg.Ctx == nil && cfg.Deadline <= 0 && cfg.MaxCandidates <= 0 {
		return nil
	}
	bud := &budget{ctx: cfg.Ctx, maxCandidates: cfg.MaxCandidates, countdown: budgetCheckEvery}
	if bud.ctx == nil {
		bud.ctx = context.Background()
	}
	if cfg.Deadline > 0 {
		bud.ctx, bud.cancel = context.WithTimeout(bud.ctx, cfg.Deadline)
	}
	return bud
}

// exhausted reports whether an anytime budget has run out, recording the
// reason in res the first time it trips.
func (bud *budget) exhausted(res *Result) bool {
	if bud == nil {
		return false
	}
	if res.Stats.Truncated {
		return true
	}
	if bud.maxCandidates > 0 && res.Stats.Recorded >= bud.maxCandidates {
		res.Stats.Truncated = true
		res.Stats.TruncatedBy = "max-candidates"
		return true
	}
	bud.countdown--
	if bud.countdown > 0 {
		return false
	}
	bud.countdown = budgetCheckEvery
	select {
	case <-bud.ctx.Done():
		res.Stats.Truncated = true
		if bud.ctx.Err() == context.DeadlineExceeded {
			res.Stats.TruncatedBy = "deadline"
		} else {
			res.Stats.TruncatedBy = "canceled"
		}
		return true
	default:
		return false
	}
}

// Explore runs the space explorer over every block of p. With an anytime
// budget configured (Ctx, Deadline, or MaxCandidates) it may stop early,
// returning best-so-far candidates with Stats.Truncated set. With
// cfg.Workers > 1 and no budget, blocks are explored concurrently and the
// per-block results merged in block order, which is byte-identical to the
// serial run.
func Explore(p *ir.Program, cfg Config) *Result {
	defer cfg.Telemetry.StartSpan("explore")()
	strat := cfg.strategy()
	res := &Result{Stats: Stats{BySize: make(map[int]int)}}
	bud := newBudget(cfg)
	if bud != nil && bud.cancel != nil {
		defer bud.cancel()
	}
	nonEmpty := 0
	for _, b := range p.Blocks {
		if len(b.Ops) > 0 {
			nonEmpty++
		}
	}
	useCorpus := cfg.corpusUsable()
	sig := ""
	if useCorpus {
		sig = cfg.corpusConfigSig()
	}
	if bud == nil && cfg.Workers > 1 && nonEmpty > 1 {
		exploreBlocksParallel(strat, p.Blocks, cfg, res, sig, useCorpus)
	} else {
		for _, b := range p.Blocks {
			if bud.exhausted(res) {
				break
			}
			exploreBlockMemo(strat, b, cfg, res, bud, sig, useCorpus)
		}
	}
	// Candidate counts before/after guide pruning: every examined subgraph
	// plus every pruned direction is a candidate the naive search would
	// have visited; recorded is what survives the CFU constraints.
	cfg.Telemetry.Add("explore.subgraphs.examined", int64(res.Stats.Examined))
	cfg.Telemetry.Add("explore.directions.pruned", int64(res.Stats.PrunedDirections))
	cfg.Telemetry.Add("explore.candidates.recorded", int64(res.Stats.Recorded))
	cfg.Telemetry.Add("explore.pool.hits", res.Stats.PoolHits)
	cfg.Telemetry.Add("explore.pool.misses", res.Stats.PoolMisses)
	cfg.Telemetry.Add("explore.visited.collisions", res.Stats.VisitedCollisions)
	cfg.Telemetry.Add("explore.corpus.hits", int64(res.Stats.CorpusHits))
	cfg.Telemetry.Add("explore.corpus.misses", int64(res.Stats.CorpusMisses))
	if res.Stats.Truncated {
		cfg.Telemetry.Add("explore.truncated", 1)
	}
	return res
}

// exploreBlocksParallel fans the blocks out over a small worker group: the
// calling goroutine plus up to Workers-1 extras, each extra gated by a
// token from cfg.Spare (when set) so the harness's -j budget is shared, not
// multiplied. Every block gets a private Result; the merge concatenates
// them in block order, making the output independent of scheduling. A
// panicking block re-panics here (lowest block index first, matching the
// serial run) after all workers have drained, for the caller's panic fence
// to convert.
func exploreBlocksParallel(strat Strategy, blocks []*ir.Block, cfg Config, res *Result, sig string, useCorpus bool) {
	n := len(blocks)
	results := make([]*Result, n)
	panics := make([]any, n)
	var panicked atomic.Bool
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panics[i] = r
						panicked.Store(true)
					}
				}()
				r := &Result{Stats: Stats{BySize: make(map[int]int)}}
				exploreBlockMemo(strat, blocks[i], cfg, r, nil, sig, useCorpus)
				results[i] = r
			}()
		}
	}
	extra := cfg.Workers - 1
	if extra > n-1 {
		extra = n - 1
	}
	var wg sync.WaitGroup
	for k := 0; k < extra; k++ {
		release := func() {}
		if cfg.Spare != nil {
			if !cfg.Spare.TryAcquire() {
				break
			}
			release = cfg.Spare.Release
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			work()
		}()
	}
	work()
	wg.Wait()
	if panicked.Load() {
		for _, pv := range panics {
			if pv != nil {
				panic(pv)
			}
		}
	}
	for _, r := range results {
		if r == nil {
			continue
		}
		res.Candidates = append(res.Candidates, r.Candidates...)
		res.Stats.Examined += r.Stats.Examined
		res.Stats.PrunedDirections += r.Stats.PrunedDirections
		res.Stats.Recorded += r.Stats.Recorded
		res.Stats.CorpusHits += r.Stats.CorpusHits
		res.Stats.CorpusMisses += r.Stats.CorpusMisses
		res.Stats.PoolHits += r.Stats.PoolHits
		res.Stats.PoolMisses += r.Stats.PoolMisses
		res.Stats.VisitedCollisions += r.Stats.VisitedCollisions
		for s, c := range r.Stats.BySize {
			res.Stats.BySize[s] += c
		}
	}
}

// ExploreBlock runs the configured strategy over a single block.
func ExploreBlock(b *ir.Block, cfg Config) *Result {
	strat := cfg.strategy()
	res := &Result{Stats: Stats{BySize: make(map[int]int)}}
	bud := newBudget(cfg)
	if bud != nil && bud.cancel != nil {
		defer bud.cancel()
	}
	useCorpus := cfg.corpusUsable()
	sig := ""
	if useCorpus {
		sig = cfg.corpusConfigSig()
	}
	exploreBlockMemo(strat, b, cfg, res, bud, sig, useCorpus)
	return res
}

// blockCtx precomputes the per-block structures the hot loop needs:
// dependence masks, value-consumption masks, reachability (for convexity),
// and per-op hardware costs.
type blockCtx struct {
	b *ir.Block
	d *ir.DFG
	n int // op count

	allowed   bitset
	dataPreds [][]int  // data predecessor op indices
	nbrMask   []bitset // data preds | data users, per op
	userMask  []bitset // data users, per op
	succsAll  [][]int  // all dependence successors (for convexity)
	reach     []bitset // forward reachability over all dependence edges
	argVals   []bitset // value-space consumption per op (ops then regs)
	escapes   []bool   // op has a live-out Dest
	area      []float64
	delay     []float64

	scratch []float64 // longest-path workspace

	nv int // value-space width (ops then regs); argUnion bitset width

	// free is the work-item freelist. One blockCtx is owned by exactly one
	// goroutine (block parallelism is across blockCtxs), so a plain slice
	// beats sync.Pool: no atomics, and items never migrate between blocks
	// of different widths.
	free                 []*workItem
	poolHits, poolMisses int64
}

func newBlockCtx(b *ir.Block, lib *hwlib.Library) *blockCtx {
	d := ir.Analyze(b)
	n := len(b.Ops)
	c := &blockCtx{
		b: b, d: d, n: n,
		allowed:   newBitset(n),
		dataPreds: make([][]int, n),
		nbrMask:   make([]bitset, n),
		userMask:  make([]bitset, n),
		succsAll:  make([][]int, n),
		reach:     make([]bitset, n),
		argVals:   make([]bitset, n),
		escapes:   make([]bool, n),
		area:      make([]float64, n),
		delay:     make([]float64, n),
		scratch:   make([]float64, n),
	}
	regID := make(map[ir.Reg]int)
	for _, op := range b.Ops {
		for _, a := range op.Args {
			if a.Kind == ir.FromReg {
				if _, ok := regID[a.Reg]; !ok {
					regID[a.Reg] = len(regID)
				}
			}
		}
	}
	nv := n + len(regID)
	c.nv = nv
	for i, op := range b.Ops {
		if lib.Allowed(op.Code) {
			c.allowed.set(i)
		}
		c.area[i] = lib.Area(op.Code)
		c.delay[i] = lib.Delay(op.Code)
		c.escapes[i] = op.Dest != 0
		for _, r := range op.Dests {
			if r != 0 {
				c.escapes[i] = true
			}
		}
		c.dataPreds[i] = d.DataPreds[i]
		c.nbrMask[i] = newBitset(n)
		c.userMask[i] = newBitset(n)
		c.argVals[i] = newBitset(nv)
		for _, p := range d.DataPreds[i] {
			c.nbrMask[i].set(p)
		}
		for _, a := range op.Args {
			switch a.Kind {
			case ir.FromOp:
				c.argVals[i].set(d.Pos[a.X])
			case ir.FromReg:
				c.argVals[i].set(n + regID[a.Reg])
			}
		}
		c.succsAll[i] = d.Succs[i]
	}
	for i := 0; i < n; i++ {
		for _, u := range c.d.Users(i) {
			c.userMask[i].set(u)
			c.nbrMask[u].set(i)
			c.nbrMask[i].set(u)
		}
	}
	// Reachability over all dependence edges, in reverse topological
	// (block) order.
	for i := n - 1; i >= 0; i-- {
		r := newBitset(n)
		for _, s := range c.succsAll[i] {
			r.set(s)
			r.orInto(c.reach[s])
		}
		c.reach[i] = r
	}
	return c
}

// workItem is one candidate subgraph with incrementally maintained state.
// Items are recycled through the blockCtx freelist: every buffer is a
// fixed-width bitset (or a length-reset slice), so alloc/release reuse the
// same backing arrays for the whole block exploration.
type workItem struct {
	set      bitset
	members  []int     // ascending op indices (block order is topological)
	depths   []float64 // internal critical-path depth per member, parallel to members
	argUnion bitset
	nbrUnion bitset
	area     float64
	latency  float64
	in, out  int
}

// alloc returns a work item with buffers sized for this block, recycled
// from the freelist when possible. Buffer contents are undefined; grow and
// seed overwrite every word.
func (c *blockCtx) alloc() *workItem {
	if k := len(c.free); k > 0 {
		w := c.free[k-1]
		c.free = c.free[:k-1]
		c.poolHits++
		return w
	}
	c.poolMisses++
	return &workItem{
		set:      newBitset(c.n),
		argUnion: newBitset(c.nv),
		nbrUnion: newBitset(c.n),
	}
}

// release returns a work item to the freelist. The caller must not use it
// afterwards: recorded candidates and the visited set copy what they keep,
// so nothing retains the buffers.
func (c *blockCtx) release(w *workItem) {
	c.free = append(c.free, w)
}

// grow returns cur extended with op nb, maintaining the derived fields
// incrementally instead of recomputing them from scratch:
//
//   - members/depths: nb is spliced into the ascending member list. Block
//     order is topological, so members before the insertion point cannot
//     depend on nb and keep their depths; members after it are recomputed
//     only when nb actually feeds the set (userMask test), otherwise copied.
//   - in: fused into the argUnion copy — popcount of (argUnion &^ set).
//   - out: starts from cur.out; only nb and its in-set data predecessors
//     can change output-ness, because adding nb alters "has a consumer
//     outside the set" for exactly the ops nb consumes.
func (c *blockCtx) grow(cur *workItem, nb int) *workItem {
	w := c.alloc()
	copy(w.set, cur.set)
	w.set.set(nb)
	copy(w.nbrUnion, cur.nbrUnion)
	w.nbrUnion.orInto(c.nbrMask[nb])
	w.area = cur.area + c.area[nb]

	// argUnion and the input-port count in one pass. Register-value bits
	// live above the op bits, so masking with set only clears op values
	// produced inside the candidate.
	in := 0
	av := c.argVals[nb]
	for i := range w.argUnion {
		u := cur.argUnion[i] | av[i]
		w.argUnion[i] = u
		if i < len(w.set) {
			u &^= w.set[i]
		}
		in += bits.OnesCount64(u)
	}
	w.in = in

	// Members, depths, and internal latency.
	ins := len(cur.members)
	for k, m := range cur.members {
		if nb < m {
			ins = k
			break
		}
	}
	w.members = append(w.members[:0], cur.members[:ins]...)
	w.depths = append(w.depths[:0], cur.depths[:ins]...)
	lat := 0.0
	for k := 0; k < ins; k++ {
		c.scratch[cur.members[k]] = cur.depths[k]
		if cur.depths[k] > lat {
			lat = cur.depths[k]
		}
	}
	best := 0.0
	for _, p := range c.dataPreds[nb] {
		if w.set.has(p) && c.scratch[p] > best {
			best = c.scratch[p]
		}
	}
	dnb := best + c.delay[nb]
	c.scratch[nb] = dnb
	w.members = append(w.members, nb)
	w.depths = append(w.depths, dnb)
	if dnb > lat {
		lat = dnb
	}
	if ins < len(cur.members) && c.userMask[nb].intersects(w.set) {
		// nb feeds at least one member after it: recompute the suffix.
		for k := ins; k < len(cur.members); k++ {
			m := cur.members[k]
			b := 0.0
			for _, p := range c.dataPreds[m] {
				if w.set.has(p) && c.scratch[p] > b {
					b = c.scratch[p]
				}
			}
			dm := b + c.delay[m]
			c.scratch[m] = dm
			w.members = append(w.members, m)
			w.depths = append(w.depths, dm)
			if dm > lat {
				lat = dm
			}
		}
	} else {
		for k := ins; k < len(cur.members); k++ {
			w.members = append(w.members, cur.members[k])
			w.depths = append(w.depths, cur.depths[k])
			if cur.depths[k] > lat {
				lat = cur.depths[k]
			}
		}
	}
	w.latency = lat

	// Output ports: a data predecessor of nb inside the set loses its
	// output-ness when nb was its last outside consumer; nb itself is an
	// output when its value escapes or is consumed outside the set.
	out := cur.out
	for _, p := range c.dataPreds[nb] {
		if w.set.has(p) && !c.escapes[p] && c.userMask[p].andNotCount(w.set) == 0 {
			out--
		}
	}
	if c.escapes[nb] || c.userMask[nb].andNotCount(w.set) > 0 {
		out++
	}
	w.out = out
	return w
}

func (c *blockCtx) seed(i int) *workItem {
	w := c.alloc()
	for k := range w.set {
		w.set[k] = 0
	}
	w.set.set(i)
	copy(w.argUnion, c.argVals[i])
	copy(w.nbrUnion, c.nbrMask[i])
	w.members = append(w.members[:0], i)
	w.depths = append(w.depths[:0], c.delay[i])
	w.area = c.area[i]
	w.latency = c.delay[i]
	w.in, w.out = c.numIO(w)
	return w
}

// longestPath computes the candidate's internal critical-path delay.
// Members are ascending, and block order is topological, so one pass
// suffices.
func (c *blockCtx) longestPath(w *workItem) float64 {
	max := 0.0
	for _, i := range w.members {
		best := 0.0
		for _, p := range c.dataPreds[i] {
			if w.set.has(p) && c.scratch[p] > best {
				best = c.scratch[p]
			}
		}
		c.scratch[i] = best + c.delay[i]
		if c.scratch[i] > max {
			max = c.scratch[i]
		}
	}
	return max
}

// numIO counts register input and output ports.
func (c *blockCtx) numIO(w *workItem) (in, out int) {
	in = w.argUnion.andNotCount(w.set)
	for _, i := range w.members {
		if c.escapes[i] || c.userMask[i].andNotCount(w.set) > 0 {
			out++
		}
	}
	return in, out
}

// convex reports whether no dependence path leaves the set and re-enters.
func (c *blockCtx) convex(w *workItem) bool {
	for _, m := range w.members {
		for _, s := range c.succsAll[m] {
			if !w.set.has(s) && c.reach[s].intersects(w.set) {
				return false
			}
		}
	}
	return true
}

func exploreBlock(b *ir.Block, cfg Config, res *Result, bud *budget) {
	if len(b.Ops) == 0 {
		return
	}
	ctx := newBlockCtx(b, cfg.Lib)
	weights := cfg.Weights.orEven()
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = weights.total() / 2
	}
	overshoot := cfg.OvershootIO
	if overshoot == 0 {
		overshoot = 2
	}
	maxExamined := cfg.MaxExamined
	if maxExamined == 0 {
		maxExamined = 200000
	}
	uarch := cfg.CostModel == CostUarch
	maxPorts := cfg.MaxInputs + cfg.MaxOutputs

	visited := newVisitedSet((ctx.n + 63) / 64)
	var queue []*workItem
	head := 0
	examined := 0
	defer func() {
		res.Stats.PoolHits += ctx.poolHits
		res.Stats.PoolMisses += ctx.poolMisses
		res.Stats.VisitedCollisions += visited.collisions
	}()

	record := func(w *workItem) { recordCandidate(ctx, b, cfg, res, w) }

	// push takes ownership of w: a duplicate is released back to the pool,
	// a fresh subgraph is recorded and queued.
	push := func(w *workItem) {
		if !visited.insert(w.set) {
			ctx.release(w)
			return
		}
		examined++
		res.Stats.Examined++
		res.Stats.BySize[len(w.members)]++
		record(w)
		queue = append(queue, w)
	}

	for i := 0; i < ctx.n && examined < maxExamined; i++ {
		if bud.exhausted(res) {
			return
		}
		if ctx.allowed.has(i) {
			push(ctx.seed(i))
		}
	}

	type scored struct {
		w     *workItem
		score float64
	}
	accepted := make([]scored, 0, 64)

	for head < len(queue) && examined < maxExamined {
		if bud.exhausted(res) {
			return
		}
		// FIFO pop: breadth-first keeps candidate sizes monotone, which
		// the Sun-style pruning ablation relies on. The head index (with
		// periodic compaction) releases popped slots without the old
		// queue[1:] reslice pinning the whole backing array.
		cur := queue[head]
		queue[head] = nil
		head++
		if head >= 1024 && head*2 >= len(queue) {
			n := copy(queue, queue[head:])
			queue = queue[:n]
			head = 0
		}

		if cfg.MaxOps > 0 && len(cur.members) >= cfg.MaxOps {
			ctx.release(cur)
			continue
		}
		if cur.in > cfg.MaxInputs+overshoot || cur.out > cfg.MaxOutputs+overshoot {
			ctx.release(cur)
			continue
		}
		if cfg.MaxArea > 0 && cur.area >= cfg.MaxArea {
			ctx.release(cur)
			continue
		}

		accepted = accepted[:0]
		for wi, wd := range cur.nbrUnion {
			if wi < len(cur.set) {
				wd &^= cur.set[wi]
			}
			for wd != 0 {
				nb := wi<<6 + bits.TrailingZeros64(wd)
				wd &= wd - 1
				if !ctx.allowed.has(nb) {
					continue
				}
				grown := ctx.grow(cur, nb)
				if cfg.Naive || cfg.CandidatePrune > 0 {
					accepted = append(accepted, scored{grown, 0})
					continue
				}
				var s float64
				if uarch {
					s = uarchScore(ctx, cur, grown, nb, weights, maxPorts)
				} else {
					s = guideScore(ctx, cur, grown, nb, weights)
				}
				if s < threshold {
					res.Stats.PrunedDirections++
					ctx.release(grown)
					continue
				}
				accepted = append(accepted, scored{grown, s})
			}
		}
		if !cfg.Naive && cfg.Fanout != nil {
			if k := cfg.Fanout(len(cur.members), b.Weight); k > 0 && len(accepted) > k {
				sort.Slice(accepted, func(a, b int) bool { return accepted[a].score > accepted[b].score })
				res.Stats.PrunedDirections += len(accepted) - k
				for _, a := range accepted[k:] {
					ctx.release(a.w)
				}
				accepted = accepted[:k]
			}
		}
		ctx.release(cur)
		for _, a := range accepted {
			push(a.w)
			if examined >= maxExamined {
				return
			}
		}

		if cfg.CandidatePrune > 0 {
			live := pruneCandidates(ctx, queue[head:], b.Weight, cfg.CandidatePrune)
			queue = queue[:head+len(live)]
		}
	}
}

// recordCandidate applies the shared candidate filter — positive cycle
// savings, port and area constraints, convexity — and appends w to res when
// it passes. Every strategy records through this one filter, so the
// candidate contract seen by combination and selection is identical no
// matter how the cut was discovered.
func recordCandidate(ctx *blockCtx, b *ir.Block, cfg Config, res *Result, w *workItem) {
	// Only subgraphs that would save cycles as a CFU are worth handing
	// to the combination stage: the unit issues once and completes in
	// ceil(latency) cycles versus one issue slot per op.
	cycles := int(math.Ceil(w.latency))
	if cycles < 1 {
		cycles = 1
	}
	if len(w.members)-cycles < 1 {
		return
	}
	if w.in > cfg.MaxInputs || w.out > cfg.MaxOutputs {
		return
	}
	if cfg.MaxArea > 0 && w.area > cfg.MaxArea {
		return
	}
	if !ctx.convex(w) {
		return
	}
	res.Candidates = append(res.Candidates, Candidate{
		Block: b, DFG: ctx.d, Set: ir.NewOpSet(w.members...),
		Area: w.area, Latency: w.latency,
		Inputs: w.in, Outputs: w.out,
	})
	res.Stats.Recorded++
}

// guideScore ranks the desirability of having grown candidate cur into
// grown by adding node nb. With uarch set (Config.CostModel == CostUarch)
// the area and latency categories price microarchitectural fit instead of
// die area: see uarchScore.
func guideScore(ctx *blockCtx, cur, grown *workItem, nb int, w GuideWeights) float64 {
	// Criticality: 10/(slack+1); nodes on the critical path score full.
	crit := w.Criticality / float64(ctx.d.Slack[nb]+1)

	// Latency: old/new * 10, preferring directions that add little delay.
	// A zero-delay direction scores full points (paper: growing toward a
	// free shifter yields 0.15/(0.15+0)*10 = 10).
	var lat float64
	switch {
	case grown.latency <= cur.latency+1e-9:
		lat = w.Latency
	default:
		lat = cur.latency / grown.latency * w.Latency
	}

	// Area: old/new * 10, with both rounded up to the nearest half adder
	// so tiny seeds are not penalized unfairly.
	area := hwlib.RoundHalf(cur.area) / hwlib.RoundHalf(grown.area) * w.Area

	// I/O: MIN(oldPorts/newPorts*10, 10); reconvergence can reduce ports.
	oldPorts, newPorts := cur.in+cur.out, grown.in+grown.out
	io := w.IO
	if newPorts > 0 {
		io = math.Min(float64(oldPorts)/float64(newPorts)*w.IO, w.IO)
	}

	return crit + lat + area + io
}

// uarchScore is the microarchitecture-aware guide scoring (CostUarch): the
// same four categories and point budget as guideScore, but the latency and
// area categories price pipeline fit instead of raw delay and die area.
// Latency awards full points while growth stays inside the current number
// of whole-cycle pipeline stages (extra combinational delay is free until
// it costs a stage), and the area points become a register-port-fit score:
// full while the grown candidate's total ports fit the machine's port
// budget, shrinking proportionally as the demand overshoots it.
func uarchScore(ctx *blockCtx, cur, grown *workItem, nb int, w GuideWeights, maxPorts int) float64 {
	crit := w.Criticality / float64(ctx.d.Slack[nb]+1)

	oldStages := math.Max(1, math.Ceil(cur.latency))
	newStages := math.Max(1, math.Ceil(grown.latency))
	lat := w.Latency
	if newStages > oldStages {
		lat = oldStages / newStages * w.Latency
	}

	fit := w.Area
	if ports := grown.in + grown.out; ports > maxPorts && ports > 0 {
		fit = float64(maxPorts) / float64(ports) * w.Area
	}

	oldPorts, newPorts := cur.in+cur.out, grown.in+grown.out
	io := w.IO
	if newPorts > 0 {
		io = math.Min(float64(oldPorts)/float64(newPorts)*w.IO, w.IO)
	}

	return crit + lat + fit + io
}

// pruneCandidates implements the Sun-style ablation: drop queued candidates
// whose merit is below frac of the best queued merit. Merit is the profile
// weight times the estimated cycles saved were the candidate a CFU. It
// compacts the live queue region in place, releasing dropped items.
func pruneCandidates(c *blockCtx, queue []*workItem, blockWeight, frac float64) []*workItem {
	if len(queue) < 2 {
		return queue
	}
	best := 0.0
	merits := make([]float64, len(queue))
	for i, w := range queue {
		saved := float64(len(w.members)) - math.Max(1, math.Ceil(w.latency))
		if saved < 0 {
			saved = 0
		}
		merits[i] = blockWeight * saved
		if merits[i] > best {
			best = merits[i]
		}
	}
	out := queue[:0]
	for i, w := range queue {
		if merits[i] >= best*frac {
			out = append(out, w)
		} else {
			c.release(w)
		}
	}
	return out
}
