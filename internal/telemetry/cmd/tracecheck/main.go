// Command tracecheck validates a telemetry trace dump: it must parse as a
// Snapshot and carry the fields the pipeline is expected to record —
// per-stage spans, memo-cache counters, and worker-pool statistics. CI
// runs it against the trace from a short sweep.
//
// Usage:
//
//	iscsweep -trace out.json && tracecheck out.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracecheck: ")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: tracecheck trace.json")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	s, err := telemetry.ReadJSON(f)
	if err != nil {
		log.Fatal(err)
	}

	if s.Tool == "" {
		log.Fatal("trace has no tool name")
	}
	if s.WallNS <= 0 {
		log.Fatalf("trace wall time %d is not positive", s.WallNS)
	}
	spans := make(map[string]bool, len(s.Spans))
	for _, sp := range s.Spans {
		if sp.Count <= 0 || sp.WallNS < 0 || sp.MinNS > sp.MaxNS {
			log.Fatalf("span %q is malformed: %+v", sp.Name, sp)
		}
		spans[sp.Name] = true
	}
	for _, want := range []string{"explore", "combine", "select", "compile"} {
		if !spans[want] {
			log.Fatalf("trace is missing the %q stage span", want)
		}
	}
	for _, want := range []string{
		"memo.benchmark.miss", "memo.candidates.miss",
		"pool.busy_ns", "pool.capacity_ns", "pool.jobs",
	} {
		if _, ok := s.Counters[want]; !ok {
			log.Fatalf("trace is missing counter %q", want)
		}
	}
	if s.Counters["pool.busy_ns"] > s.Counters["pool.capacity_ns"] {
		log.Fatalf("pool busy %d exceeds capacity %d",
			s.Counters["pool.busy_ns"], s.Counters["pool.capacity_ns"])
	}
	if _, ok := s.Gauges["pool.workers"]; !ok {
		log.Fatal("trace is missing the pool.workers gauge")
	}
	fmt.Printf("tracecheck: %s ok: %d spans, %d counters, %d gauges\n",
		s.Tool, len(s.Spans), len(s.Counters), len(s.Gauges))
}
